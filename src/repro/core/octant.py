"""Dimension-agnostic octant (quadtree/octree cell) algebra.

An octant is identified by its *anchor* (the lexicographically smallest
corner) expressed in integer coordinates at the finest representable
resolution, together with its *level* (depth in the tree).  The root
octant has level 0 and spans ``[0, 2**max_level(dim))`` along every axis;
an octant at level ``l`` has side ``2**(max_level(dim) - l)`` in anchor
units.

All operations here are vectorised: octant collections are stored as an
``(N, dim)`` ``uint32`` anchor array plus an ``(N,)`` ``uint8`` level
array (see :class:`OctantSet`).  No per-octant Python objects exist in
hot paths, per the HPC guide idioms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "max_level",
    "octant_size",
    "OctantSet",
    "parent",
    "children",
    "child_number",
    "neighbors",
    "ancestor_at_level",
    "contains",
    "is_ancestor",
    "cell_bounds",
]


def max_level(dim: int) -> int:
    """Finest tree depth representable for ``dim`` (keys fit in 63 bits)."""
    if dim < 1:
        raise ValueError(f"dimension must be >= 1, got {dim}")
    return min(63 // dim, 30)


def octant_size(levels: np.ndarray | int, dim: int) -> np.ndarray | int:
    """Side length in anchor units of octants at ``levels``."""
    m = max_level(dim)
    lv = np.asarray(levels)
    if np.any(lv < 0) or np.any(lv > m):
        raise ValueError(f"levels must lie in [0, {m}]")
    out = np.uint32(1) << (np.uint32(m) - lv.astype(np.uint32))
    if np.isscalar(levels):
        return int(out)
    return out


@dataclass
class OctantSet:
    """A flat collection of octants of a fixed dimension.

    Attributes
    ----------
    anchors:
        ``(N, dim)`` uint32 integer anchor coordinates.
    levels:
        ``(N,)`` uint8 tree levels.
    """

    anchors: np.ndarray
    levels: np.ndarray
    dim: int = field(default=-1)

    def __post_init__(self) -> None:
        self.anchors = np.ascontiguousarray(self.anchors, dtype=np.uint32)
        self.levels = np.ascontiguousarray(self.levels, dtype=np.uint8)
        if self.anchors.ndim != 2:
            raise ValueError("anchors must be a 2-D (N, dim) array")
        if self.dim == -1:
            self.dim = int(self.anchors.shape[1])
        if self.anchors.shape != (len(self.levels), self.dim):
            raise ValueError(
                f"shape mismatch: anchors {self.anchors.shape}, "
                f"levels {self.levels.shape}, dim {self.dim}"
            )

    # -- basic container protocol -------------------------------------
    def __len__(self) -> int:
        return len(self.levels)

    def __getitem__(self, idx) -> "OctantSet":
        if np.isscalar(idx) or isinstance(idx, (int, np.integer)):
            idx = [idx]
        return OctantSet(self.anchors[idx], self.levels[idx], self.dim)

    @classmethod
    def root(cls, dim: int) -> "OctantSet":
        return cls(np.zeros((1, dim), np.uint32), np.zeros(1, np.uint8), dim)

    @classmethod
    def empty(cls, dim: int) -> "OctantSet":
        return cls(np.zeros((0, dim), np.uint32), np.zeros(0, np.uint8), dim)

    @classmethod
    def concatenate(cls, sets: list["OctantSet"]) -> "OctantSet":
        if not sets:
            raise ValueError("need at least one OctantSet")
        dim = sets[0].dim
        return cls(
            np.concatenate([s.anchors for s in sets]),
            np.concatenate([s.levels for s in sets]),
            dim,
        )

    @property
    def sizes(self) -> np.ndarray:
        """Side lengths in anchor units, one per octant."""
        return octant_size(self.levels, self.dim)

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Lower and upper corners in anchor units: ``(lo, hi)``."""
        lo = self.anchors.astype(np.int64)
        hi = lo + self.sizes.astype(np.int64)[:, None]
        return lo, hi

    def physical_bounds(self, domain_scale=1.0) -> tuple[np.ndarray, np.ndarray]:
        """Bounds mapped to physical coordinates in ``[0, domain_scale]**dim``.

        ``domain_scale`` may be a scalar or a length-``dim`` vector (for
        anisotropic embeddings of the unit cube).
        """
        m = max_level(self.dim)
        h = np.asarray(domain_scale, dtype=np.float64) / (1 << m)
        lo, hi = self.bounds()
        return lo * h, hi * h


# -- vectorised octant algebra ----------------------------------------

def parent(oset: OctantSet) -> OctantSet:
    """Parents of every octant (root maps to itself)."""
    lv = np.maximum(oset.levels.astype(np.int64) - 1, 0)
    psize = octant_size(lv, oset.dim).astype(np.uint32)
    mask = ~(psize - np.uint32(1))
    return OctantSet(oset.anchors & mask[:, None], lv.astype(np.uint8), oset.dim)


def children(oset: OctantSet) -> OctantSet:
    """All ``2**dim`` children of every octant, grouped per parent.

    The output has ``N * 2**dim`` octants ordered parent-major with
    children in Morton (child-number) order within each parent.
    """
    dim = oset.dim
    m = max_level(dim)
    if np.any(oset.levels >= m):
        raise ValueError("cannot refine octants already at max level")
    n = len(oset)
    nch = 1 << dim
    csize = (octant_size(oset.levels, dim) >> 1).astype(np.uint32)
    # child-number bit j sets axis j
    offs = np.zeros((nch, dim), np.uint32)
    for k in range(nch):
        for j in range(dim):
            offs[k, j] = (k >> j) & 1
    anchors = (
        oset.anchors[:, None, :] + offs[None, :, :] * csize[:, None, None]
    ).reshape(n * nch, dim)
    levels = np.repeat(oset.levels + np.uint8(1), nch)
    return OctantSet(anchors.astype(np.uint32), levels, dim)


def child_number(oset: OctantSet) -> np.ndarray:
    """Morton child index of each octant within its parent (root -> 0)."""
    dim = oset.dim
    m = max_level(dim)
    shift = (m - oset.levels.astype(np.int64)).astype(np.uint32)
    bits = (oset.anchors.astype(np.uint64) >> shift[:, None].astype(np.uint64)) & 1
    weights = (np.uint64(1) << np.arange(dim, dtype=np.uint64))
    out = (bits * weights[None, :]).sum(axis=1).astype(np.int64)
    out[oset.levels == 0] = 0
    return out


_NEIGHBOR_OFFSETS_CACHE: dict[int, np.ndarray] = {}


def _neighbor_offsets(dim: int) -> np.ndarray:
    """All ``3**dim - 1`` nonzero offsets in {-1, 0, 1}**dim."""
    if dim not in _NEIGHBOR_OFFSETS_CACHE:
        grids = np.meshgrid(*([np.array([-1, 0, 1])] * dim), indexing="ij")
        offs = np.stack([g.ravel() for g in grids], axis=1)
        offs = offs[np.any(offs != 0, axis=1)]
        _NEIGHBOR_OFFSETS_CACHE[dim] = offs.astype(np.int64)
    return _NEIGHBOR_OFFSETS_CACHE[dim]


def neighbors(oset: OctantSet, include_self: bool = False) -> OctantSet:
    """Same-level face/edge/corner neighbours of every octant.

    Neighbours falling outside the root domain are dropped.  Output is
    concatenated over inputs (duplicates across inputs are *not* removed;
    callers dedup via SFC keys).
    """
    dim = oset.dim
    m = max_level(dim)
    offs = _neighbor_offsets(dim)
    if include_self:
        offs = np.concatenate([offs, np.zeros((1, dim), np.int64)])
    sizes = oset.sizes.astype(np.int64)
    cand = oset.anchors.astype(np.int64)[:, None, :] + offs[None, :, :] * sizes[:, None, None]
    levels = np.repeat(oset.levels, len(offs))
    cand = cand.reshape(-1, dim)
    extent = np.int64(1) << m
    ok = np.all((cand >= 0) & (cand < extent), axis=1)
    return OctantSet(cand[ok].astype(np.uint32), levels[ok], dim)


def ancestor_at_level(oset: OctantSet, level: int) -> OctantSet:
    """Ancestors of every octant at a fixed coarser ``level``."""
    if np.any(oset.levels < level):
        raise ValueError("requested ancestor level finer than octant level")
    size = np.uint32(octant_size(level, oset.dim))
    mask = ~(size - np.uint32(1))
    return OctantSet(
        oset.anchors & mask, np.full(len(oset), level, np.uint8), oset.dim
    )


def is_ancestor(a: OctantSet, b: OctantSet) -> np.ndarray:
    """Elementwise: is ``a[i]`` a strict ancestor of ``b[i]``?"""
    if len(a) != len(b):
        raise ValueError("is_ancestor requires equal-length sets")
    coarser = a.levels < b.levels
    sizes = a.sizes.astype(np.int64)
    lo = a.anchors.astype(np.int64)
    inside = np.all(
        (b.anchors.astype(np.int64) >= lo)
        & (b.anchors.astype(np.int64) < lo + sizes[:, None]),
        axis=1,
    )
    return coarser & inside


def contains(oset: OctantSet, points: np.ndarray) -> np.ndarray:
    """Boolean ``(N, P)`` matrix: octant i contains (closed) point j.

    ``points`` are integer anchor-unit coordinates, ``(P, dim)``.
    Containment is in the *closed* cell (boundary points count), which is
    what nodal-ownership queries need.
    """
    lo, hi = oset.bounds()
    p = np.asarray(points, dtype=np.int64)
    return np.all((p[None] >= lo[:, None]) & (p[None] <= hi[:, None]), axis=2)


def cell_bounds(oset: OctantSet, domain_scale=1.0):
    """Convenience alias for :meth:`OctantSet.physical_bounds`."""
    return oset.physical_bounds(domain_scale)
