"""Physical domain: a scaled cube plus a subdomain predicate.

The octree always spans the cube ``[0, scale]**dim``; the predicate
carves arbitrary regions from it (including everything outside an
anisotropic subrectangle — the channel cases).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry.predicate import EverywhereRetained, RegionLabel, SubdomainPredicate
from .octant import OctantSet, max_level

__all__ = ["Domain"]


@dataclass
class Domain:
    """A cube ``[0, scale]**dim`` with a carving predicate.

    Parameters
    ----------
    predicate:
        The subdomain specification F (see §3.1).  ``None`` means
        nothing is carved (a complete octree).
    dim:
        Spatial dimension; defaults to the predicate's.
    scale:
        Physical side length of the cube.
    """

    predicate: SubdomainPredicate | None = None
    dim: int = field(default=-1)
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.predicate is None:
            if self.dim == -1:
                raise ValueError("must give a predicate or an explicit dim")
            self.predicate = EverywhereRetained(self.dim)
        if self.dim == -1:
            self.dim = self.predicate.dim
        elif self.dim != self.predicate.dim:
            raise ValueError(
                f"dim {self.dim} != predicate dim {self.predicate.dim}"
            )
        self.scale = float(self.scale)
        # In-Out query accounting: the paper (§5) notes the classifier
        # calls (ray tracing for mesh geometry) dominate mesh-generation
        # cost for high surface-to-volume objects — these counters let
        # benches report exactly that
        self.cell_queries = 0
        self.point_queries = 0

    def reset_query_counters(self) -> None:
        self.cell_queries = 0
        self.point_queries = 0

    @property
    def h_unit(self) -> float:
        """Physical length of one anchor unit."""
        return self.scale / (1 << max_level(self.dim))

    def to_physical(self, coords: np.ndarray, denom: float = 1.0) -> np.ndarray:
        """Map integer coordinates (anchor units / ``denom``) to physical."""
        return np.asarray(coords, np.float64) * (self.h_unit / denom)

    def classify_octants(self, oset: OctantSet) -> np.ndarray:
        """Apply F to every octant; returns RegionLabel uint8 array."""
        lo, hi = oset.physical_bounds(self.scale)
        self.cell_queries += len(oset)
        return self.predicate.classify_cells(lo, hi)

    def carved_points(self, phys_pts: np.ndarray) -> np.ndarray:
        self.point_queries += len(phys_pts)
        return self.predicate.carved_points(phys_pts)

    def octant_centers(self, oset: OctantSet) -> np.ndarray:
        lo, hi = oset.physical_bounds(self.scale)
        return 0.5 * (lo + hi)
