"""Distributed octree construction (Algorithm 3) on the simulated MPI.

DistTreeSort partitions SFC-sorted octants across virtual ranks with a
load tolerance; DistributedConstructConstrained lets every rank build a
tree satisfying its local seed constraints, re-sorts, and resolves
overlaps across rank boundaries preferring finer octants — so depth
constraints hold globally.  All inter-rank traffic flows through
:class:`~repro.parallel.simmpi.SimComm` and is therefore measured.
"""

from __future__ import annotations

import numpy as np

from ..parallel.partition import partition_weights
from ..parallel.simmpi import SimComm
from .construct import construct_constrained
from .domain import Domain
from .octant import OctantSet
from .sfc import get_curve
from .treesort import block_ends, linearize, remove_duplicates, tree_sort

__all__ = [
    "dist_tree_sort",
    "distributed_construct_constrained",
    "distributed_balance_2to1",
    "gather_global",
]


def _pack(oset: OctantSet) -> np.ndarray:
    """Serialise an OctantSet into a (N, dim+1) int64 buffer."""
    return np.concatenate(
        [oset.anchors.astype(np.int64), oset.levels.astype(np.int64)[:, None]],
        axis=1,
    )


def _unpack(buf: np.ndarray | None, dim: int) -> OctantSet:
    if buf is None or len(buf) == 0:
        return OctantSet.empty(dim)
    return OctantSet(
        buf[:, :dim].astype(np.uint32), buf[:, dim].astype(np.uint8), dim
    )


def dist_tree_sort(
    parts: list[OctantSet],
    comm: SimComm,
    load_tol: float = 0.1,
    curve: str = "morton",
) -> list[OctantSet]:
    """Globally sort and repartition distributed octants (DistTreeSort).

    ``parts[r]`` is rank r's local octants; the result is SFC-sorted
    with rank ranges split at (tolerance-adjusted) weight boundaries.
    """
    oracle = get_curve(curve)
    dim = parts[0].dim
    nranks = comm.size
    # local sorts
    parts = [tree_sort(p, oracle)[0] for p in parts]
    # splitter selection: allgather per-rank key ranges + counts, then
    # every rank computes identical global splitters
    keys_per_rank = [oracle.keys(p) for p in parts]
    counts = comm.allgather([np.int64(len(p)) for p in parts])[0]
    all_keys = np.concatenate(keys_per_rank) if sum(counts) else np.zeros(0, np.uint64)
    all_levels = np.concatenate([p.levels for p in parts])
    order = np.lexsort((all_levels, all_keys))
    sorted_keys = all_keys[order]
    splits = partition_weights(
        np.ones(len(sorted_keys)), nranks, load_tol, keys=sorted_keys, dim=dim
    )
    splitter_keys = sorted_keys[np.clip(splits[1:-1], 0, max(len(sorted_keys) - 1, 0))]
    # route octants to destination ranks (alltoallv with traffic counts)
    send: list[list] = [[None] * nranks for _ in range(nranks)]
    for src in range(nranks):
        if len(parts[src]) == 0:
            continue
        dest = np.searchsorted(splitter_keys, keys_per_rank[src], side="right")
        for dst in range(nranks):
            sel = np.flatnonzero(dest == dst)
            if len(sel):
                send[src][dst] = _pack(parts[src][sel])
    recv = comm.alltoallv(send)
    out = []
    for r in range(nranks):
        bufs = [b for b in recv[r] if b is not None]
        merged = (
            OctantSet.concatenate([_unpack(b, dim) for b in bufs])
            if bufs
            else OctantSet.empty(dim)
        )
        out.append(tree_sort(merged, oracle)[0])
    return out


def distributed_construct_constrained(
    domain: Domain,
    seed_parts: list[OctantSet],
    comm: SimComm,
    load_tol: float = 0.1,
    curve: str = "morton",
) -> list[OctantSet]:
    """Algorithm 3: distributed leaves, no coarser than the seeds.

    Each rank constructs a tree satisfying its local constraints; after
    a global re-sort, duplicates are removed and overlaps across rank
    boundaries are resolved preferring finer octants.
    """
    oracle = get_curve(curve)
    dim = domain.dim
    seed_parts = dist_tree_sort(seed_parts, comm, load_tol, curve)
    tmp = [construct_constrained(domain, s, curve) for s in seed_parts]
    tmp = dist_tree_sort(tmp, comm, load_tol, curve)
    # local dedup + overlap resolution
    local = [linearize(t, oracle, prefer="finer") for t in tmp]
    # cross-boundary: an octant whose block extends past the next rank's
    # first key contains octants there -> drop it (finer wins). Exchange
    # the first key of each rank to its predecessor.
    firsts = [
        oracle.keys(t)[0] if len(t) else np.uint64(0xFFFFFFFFFFFFFFFF)
        for t in local
    ]
    gathered = comm.allgather([np.uint64(f) for f in firsts])[0]
    out = []
    for r in range(comm.size):
        t = local[r]
        if len(t) == 0 or r == comm.size - 1:
            out.append(t)
            continue
        nxt = np.uint64(min(int(g) for g in gathered[r + 1 :]))
        ends = block_ends(oracle.keys(t), t.levels, dim)
        keep = ends <= nxt
        out.append(t[np.flatnonzero(keep)])
    return out


def distributed_balance_2to1(
    domain: Domain,
    seed_parts: list[OctantSet],
    comm: SimComm,
    load_tol: float = 0.1,
    curve: str = "morton",
) -> list[OctantSet]:
    """Algorithm 4, distributed: balance via neighbour-of-parent seeds.

    The bottom-up seed propagation runs rank-locally; the generated
    auxiliary seeds are globally merged by the constrained construction
    (which already deduplicates through DistTreeSort).
    """
    from .balance import bottom_up_constrain_neighbors

    aux = [
        bottom_up_constrain_neighbors(p) if len(p) else p for p in seed_parts
    ]
    return distributed_construct_constrained(domain, aux, comm, load_tol, curve)


def gather_global(parts: list[OctantSet], curve: str = "morton") -> OctantSet:
    """Concatenate per-rank octants into one deduplicated global set."""
    merged = OctantSet.concatenate([p for p in parts if len(p)])
    return remove_duplicates(merged, get_curve(curve))
