"""Space-filling-curve (SFC) oracles: Morton and Hilbert orderings.

The octree algorithms (TreeSort, construction, partitioning) are
parameterised by an SFC "oracle" that linearly orders the cells of the
finest grid.  An octant at level ``l`` covers a contiguous block of
``2**(dim*(max_level-l))`` finest cells under both curves (the curves are
self-similar), so the octant's key is the key of its first finest cell,
i.e. the key of its anchor with the low ``dim*(max_level-l)`` bits
cleared.

Morton keys are plain bit interleaves.  Hilbert keys use Skilling's
transpose algorithm ("Programming the Hilbert curve", AIP CP 707, 2004),
vectorised over numpy arrays.
"""

from __future__ import annotations

import numpy as np

from .octant import OctantSet, max_level

__all__ = ["SFCOracle", "MortonOrder", "HilbertOrder", "sfc_sort_order", "get_curve"]


def _interleave(coords: np.ndarray, nbits: int, reverse_axes: bool) -> np.ndarray:
    """Bit-interleave ``(N, dim)`` integer coords into uint64 keys.

    Bit ``j`` of axis ``i`` lands at key position ``j*dim + i`` (or with
    the axis order reversed when ``reverse_axes`` — the convention the
    Hilbert transpose format requires, axis 0 most significant).
    """
    c = np.ascontiguousarray(coords, dtype=np.uint64)
    n, dim = c.shape
    key = np.zeros(n, np.uint64)
    if dim == 2 and nbits <= 32:
        spread = _spread_1by1
    elif dim == 3 and nbits <= 21:
        spread = _spread_1by2
    else:
        spread = None
    for i in range(dim):
        pos = (dim - 1 - i) if reverse_axes else i
        col = c[:, i]
        if spread is not None:
            key |= spread(col) << np.uint64(pos)
            continue
        for j in range(nbits):
            bit = (col >> np.uint64(j)) & np.uint64(1)
            key |= bit << np.uint64(j * dim + pos)
    return key


def _spread_1by1(x: np.ndarray) -> np.ndarray:
    """Spread the low 32 bits of ``x``: bit j lands at position 2j."""
    u = np.uint64
    x = x & u(0xFFFFFFFF)
    x = (x | (x << u(16))) & u(0x0000FFFF0000FFFF)
    x = (x | (x << u(8))) & u(0x00FF00FF00FF00FF)
    x = (x | (x << u(4))) & u(0x0F0F0F0F0F0F0F0F)
    x = (x | (x << u(2))) & u(0x3333333333333333)
    x = (x | (x << u(1))) & u(0x5555555555555555)
    return x


def _spread_1by2(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of ``x``: bit j lands at position 3j."""
    u = np.uint64
    x = x & u(0x1FFFFF)
    x = (x | (x << u(32))) & u(0x001F00000000FFFF)
    x = (x | (x << u(16))) & u(0x001F0000FF0000FF)
    x = (x | (x << u(8))) & u(0x100F00F00F00F00F)
    x = (x | (x << u(4))) & u(0x10C30C30C30C30C3)
    x = (x | (x << u(2))) & u(0x1249249249249249)
    return x


def _axes_to_transpose(coords: np.ndarray, nbits: int) -> np.ndarray:
    """Skilling's AxesToTranspose, vectorised. Returns transposed coords."""
    x = np.ascontiguousarray(coords, dtype=np.uint64).copy()
    n, dim = x.shape
    q = np.uint64(1) << np.uint64(nbits - 1)
    one = np.uint64(1)
    # Inverse undo
    while q > one:
        p = q - one
        for i in range(dim):
            hi = (x[:, i] & q) != 0
            # invert low bits of x[0] where bit set
            x[hi, 0] ^= p
            # exchange low bits of x[0] and x[i] where bit clear
            lo = ~hi
            t = (x[lo, 0] ^ x[lo, i]) & p
            x[lo, 0] ^= t
            x[lo, i] ^= t
        q >>= one
    # Gray encode
    for i in range(1, dim):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(n, np.uint64)
    q = np.uint64(1) << np.uint64(nbits - 1)
    while q > one:
        sel = (x[:, dim - 1] & q) != 0
        t[sel] ^= q - one
        q >>= one
    x ^= t[:, None]
    return x


class SFCOracle:
    """Base interface: uint64 keys over finest-grid coordinates."""

    name = "abstract"

    def keys_from_coords(self, coords: np.ndarray, dim: int) -> np.ndarray:
        raise NotImplementedError

    def keys(self, oset: OctantSet) -> np.ndarray:
        """Keys of octants: anchor key with sub-octant bits cleared."""
        m = max_level(oset.dim)
        key = self.keys_from_coords(oset.anchors, oset.dim)
        shift = (np.uint64(oset.dim) * (np.uint64(m) - oset.levels.astype(np.uint64)))
        # clear the low dim*(m-l) bits (block-align the key)
        return (key >> shift) << shift


class MortonOrder(SFCOracle):
    """Z-order / Lebesgue curve: plain bit interleave."""

    name = "morton"

    def keys_from_coords(self, coords: np.ndarray, dim: int) -> np.ndarray:
        return _interleave(coords, max_level(dim), reverse_axes=False)


class HilbertOrder(SFCOracle):
    """Hilbert curve via Skilling's transpose algorithm."""

    name = "hilbert"

    def keys_from_coords(self, coords: np.ndarray, dim: int) -> np.ndarray:
        nbits = max_level(dim)
        tr = _axes_to_transpose(coords, nbits)
        return _interleave(tr, nbits, reverse_axes=True)


_CURVES = {"morton": MortonOrder(), "hilbert": HilbertOrder()}


def get_curve(curve: "str | SFCOracle") -> SFCOracle:
    """Resolve a curve name ('morton' / 'hilbert') or pass through."""
    if isinstance(curve, SFCOracle):
        return curve
    try:
        return _CURVES[curve]
    except KeyError:
        raise ValueError(f"unknown SFC curve {curve!r}; options: {sorted(_CURVES)}")


def cached_keys(oset: OctantSet, curve: "str | SFCOracle" = "morton") -> np.ndarray:
    """Block-aligned keys of ``oset``, memoized on the octant set.

    Octant sets are treated as immutable throughout the repo (every
    operation returns a new set), so the keys are computed once per
    (set, curve) and reused — the incremental plan path
    (:mod:`repro.core.plan_delta`) queries the same leaf arrays several
    times per AMR step.  The returned array is marked read-only.
    """
    oracle = get_curve(curve)
    cache = getattr(oset, "_sfc_keys", None)
    if cache is None:
        cache = {}
        oset._sfc_keys = cache
    keys = cache.get(oracle.name)
    if keys is None:
        keys = oracle.keys(oset)
        keys.flags.writeable = False
        cache[oracle.name] = keys
    return keys


def sfc_sort_order(oset: OctantSet, curve: "str | SFCOracle" = "morton") -> np.ndarray:
    """Permutation putting octants in SFC order (ancestors before
    descendants that start the same block; ties broken coarse-first)."""
    oracle = get_curve(curve)
    keys = oracle.keys(oset)
    return np.lexsort((oset.levels, keys))
