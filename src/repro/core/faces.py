"""Boundary-face extraction on incomplete octrees.

A face of a retained leaf is a *subdomain-boundary* face when the
equal-size region across it contains no retained leaf (it was carved) —
these faces tile the voxelated surrogate boundary Γ̃ used by the
Shifted Boundary Method and by surface integrals (drag, fluxes).
Faces on the root-cube boundary are reported separately.

With the standard construction (intercepted octants refined to one
uniform boundary level) the equal-size neighbour test is exact; meshes
whose carved interface abuts elements of mixed levels would need
sub-face resolution, which the evaluation meshes never produce.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .mesh import IncompleteMesh
from .octant import max_level
from .sfc import get_curve
from .treesort import block_ends

__all__ = ["BoundaryFaces", "extract_boundary_faces"]


@dataclass
class BoundaryFaces:
    """Faces on the carved (subdomain) and cube (domain) boundaries.

    ``elem``/``axis``/``side`` are parallel arrays: element index, face
    normal axis, and side (0 = low face, 1 = high face).  The outward
    normal of face k is ``side*2-1`` along ``axis``.
    """

    elem: np.ndarray
    axis: np.ndarray
    side: np.ndarray

    def __len__(self) -> int:
        return len(self.elem)

    def outward_normals(self, dim: int) -> np.ndarray:
        n = np.zeros((len(self.elem), dim))
        n[np.arange(len(self.elem)), self.axis] = 2.0 * self.side - 1.0
        return n


def extract_boundary_faces(
    mesh: IncompleteMesh,
) -> tuple[BoundaryFaces, BoundaryFaces]:
    """Return ``(subdomain_faces, domain_faces)`` for the mesh."""
    leaves = mesh.leaves
    dim = mesh.dim
    m = max_level(dim)
    oracle = get_curve(mesh.curve)
    keys = oracle.keys(leaves)
    ends = block_ends(keys, leaves.levels, dim)
    n = len(leaves)
    a = leaves.anchors.astype(np.int64)
    s = leaves.sizes.astype(np.int64)
    extent = np.int64(1) << m

    sub_e, sub_ax, sub_sd = [], [], []
    dom_e, dom_ax, dom_sd = [], [], []
    span = (
        np.uint64(1)
        << (np.uint64(dim) * (np.uint64(m) - leaves.levels.astype(np.uint64)))
    )
    for axis in range(dim):
        for side in (0, 1):
            shift = np.where(side == 1, s, -s)
            nb = a.copy()
            nb[:, axis] += shift
            outside = (nb[:, axis] < 0) | (nb[:, axis] >= extent)
            idx_out = np.flatnonzero(outside)
            dom_e.append(idx_out)
            dom_ax.append(np.full(len(idx_out), axis))
            dom_sd.append(np.full(len(idx_out), side))
            inside = np.flatnonzero(~outside)
            if len(inside) == 0:
                continue
            nk = oracle.keys_from_coords(nb[inside].astype(np.uint32), dim)
            nk_end = nk + span[inside]
            # a retained leaf overlaps the neighbour block iff some leaf
            # key falls inside it, or a coarser leaf contains its start
            i0 = np.searchsorted(keys, nk, side="left")
            has_in = (i0 < n) & (np.where(i0 < n, keys[np.minimum(i0, n - 1)], 0) < nk_end)
            j = np.searchsorted(keys, nk, side="right") - 1
            jc = np.clip(j, 0, n - 1)
            has_cover = (j >= 0) & (nk < ends[jc])
            boundary = ~(has_in | has_cover)
            idx_b = inside[boundary]
            sub_e.append(idx_b)
            sub_ax.append(np.full(len(idx_b), axis))
            sub_sd.append(np.full(len(idx_b), side))

    def _pack(es, axs, sds):
        return BoundaryFaces(
            np.concatenate(es) if es else np.zeros(0, np.int64),
            np.concatenate(axs) if axs else np.zeros(0, np.int64),
            np.concatenate(sds) if sds else np.zeros(0, np.int64),
        )

    return _pack(sub_e, sub_ax, sub_sd), _pack(dom_e, dom_ax, dom_sd)
