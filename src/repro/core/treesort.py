"""TreeSort: comparison-free SFC sorting and linear-octree utilities.

The production sort computes 64-bit SFC keys in one vectorised pass and
argsorts them — the numpy analogue of a most-significant-digit radix
sort.  A faithful recursive MSD bucketing implementation
(:func:`tree_sort_msd`) is kept as the reference (and as an ablation
benchmark target): it buckets octants level by level, permuting buckets
into the regional SFC order exactly as TreeSort in the paper does.
"""

from __future__ import annotations

import numpy as np

from ..obs import span
from .octant import OctantSet, max_level
from .sfc import SFCOracle, get_curve

__all__ = [
    "tree_sort",
    "tree_sort_msd",
    "remove_duplicates",
    "linearize",
    "is_sorted_linear",
    "block_ends",
]


def block_ends(keys: np.ndarray, levels: np.ndarray, dim: int) -> np.ndarray:
    """Exclusive end key of each octant's SFC block."""
    m = max_level(dim)
    span = np.uint64(dim) * (np.uint64(m) - levels.astype(np.uint64))
    return keys + (np.uint64(1) << span)


def tree_sort(
    oset: OctantSet, curve: "str | SFCOracle" = "morton"
) -> tuple[OctantSet, np.ndarray]:
    """Sort octants into SFC order. Returns (sorted set, permutation)."""
    with span("treesort", merge=True) as sp:
        oracle = get_curve(curve)
        keys = oracle.keys(oset)
        order = np.lexsort((oset.levels, keys))
        sp.add("octants", len(oset))
    return oset[order], order


def tree_sort_msd(oset: OctantSet, curve: "str | SFCOracle" = "morton") -> OctantSet:
    """Reference MSD-radix TreeSort: recursive per-level SFC bucketing.

    Functionally identical to :func:`tree_sort` (asserted in tests);
    kept for fidelity to the paper's Algorithm and for the sort ablation
    benchmark.
    """
    oracle = get_curve(curve)
    dim = oset.dim
    m = max_level(dim)
    keys = oracle.keys(oset)
    out_idx: list[np.ndarray] = []

    def recurse(idx: np.ndarray, level: int) -> None:
        if len(idx) == 0:
            return
        if len(idx) == 1 or level >= m:
            # order coarse-first among identical blocks
            out_idx.append(idx[np.argsort(oset.levels[idx], kind="stable")])
            return
        here = idx[oset.levels[idx] == level]
        if len(here):
            out_idx.append(here)
        rest = idx[oset.levels[idx] > level]
        if len(rest) == 0:
            return
        # bucket by the SFC digit at this level: dim bits of the key
        shift = np.uint64(dim) * np.uint64(m - level - 1)
        digit = (keys[rest] >> shift) & np.uint64((1 << dim) - 1)
        order = np.argsort(digit, kind="stable")
        rest = rest[order]
        counts = np.bincount(digit[order].astype(np.int64), minlength=1 << dim)
        offs = np.concatenate([[0], np.cumsum(counts)])
        for c in range(1 << dim):
            recurse(rest[offs[c]:offs[c + 1]], level + 1)

    recurse(np.arange(len(oset)), 0)
    if not out_idx:
        return OctantSet.empty(dim)
    return oset[np.concatenate(out_idx)]


def remove_duplicates(
    oset: OctantSet, curve: "str | SFCOracle" = "morton", assume_sorted: bool = False
) -> OctantSet:
    """Remove exact duplicate octants (same anchor and level)."""
    oracle = get_curve(curve)
    if not assume_sorted:
        oset, _ = tree_sort(oset, oracle)
    keys = oracle.keys(oset)
    if len(oset) == 0:
        return oset
    keep = np.ones(len(oset), bool)
    keep[1:] = (keys[1:] != keys[:-1]) | (oset.levels[1:] != oset.levels[:-1])
    return oset[np.flatnonzero(keep)]


def linearize(
    oset: OctantSet,
    curve: "str | SFCOracle" = "morton",
    prefer: str = "finer",
) -> OctantSet:
    """Resolve overlaps in an octant set, producing a linear octree.

    ``prefer='finer'`` deletes every octant that has a strict descendant
    present (the Algorithm-3 rule: finer octants win, so depth
    constraints hold globally).  ``prefer='coarser'`` deletes octants
    contained in a coarser one.
    """
    if prefer not in ("finer", "coarser"):
        raise ValueError("prefer must be 'finer' or 'coarser'")
    oracle = get_curve(curve)
    oset, _ = tree_sort(oset, oracle)
    oset = remove_duplicates(oset, oracle, assume_sorted=True)
    n = len(oset)
    if n <= 1:
        return oset
    keys = oracle.keys(oset)
    ends = block_ends(keys, oset.levels, oset.dim)
    if prefer == "finer":
        # In (key, level) order an octant's first strict descendant, if
        # any, is its immediate successor (SFC blocks are nested or
        # disjoint), so one shifted comparison suffices.
        keep = np.ones(n, bool)
        keep[:-1] = keys[1:] >= ends[:-1]
    elif prefer == "coarser":
        cummax = np.maximum.accumulate(ends)
        keep = np.ones(n, bool)
        keep[1:] = keys[1:] >= cummax[:-1]
    else:
        raise ValueError("prefer must be 'finer' or 'coarser'")
    return oset[np.flatnonzero(keep)]


def is_sorted_linear(oset: OctantSet, curve: "str | SFCOracle" = "morton") -> bool:
    """True if the set is SFC-sorted, duplicate-free and overlap-free."""
    oracle = get_curve(curve)
    keys = oracle.keys(oset)
    if len(oset) <= 1:
        return True
    if not np.all(keys[:-1] <= keys[1:]):
        return False
    ends = block_ends(keys, oset.levels, oset.dim)
    return bool(np.all(keys[1:] >= ends[:-1]))
