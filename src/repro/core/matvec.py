"""Matrix-free MATVEC on incomplete octrees (§3.5).

Two implementations, verified against each other:

* :class:`MapBasedMatVec` — the conventional element-to-node-map
  approach the paper argues against: gather local vectors through the
  (sparse) element-to-node interpolation map, apply batched elemental
  kernels, scatter-add back.  In numpy this is the *fast* path (sparse
  gather + one dense matmul), so it serves as the production operator.

* :func:`traversal_matvec` — the paper's traversal-based algorithm:
  a top-down pass buckets nodal values to child subtrees (duplicating
  nodes incident on several children) until each leaf holds its
  elemental nodes contiguously; hanging slots are interpolated from the
  coarser-level nodes present in the leaf's bucket (delivered by the
  same top-down pass); after the elemental apply, a bottom-up pass
  accumulates duplicated node instances back to a single value.  The
  traversal gracefully handles incomplete trees because its path is
  restricted to the existing octants.  When tracing is on (see
  :mod:`repro.obs`), merge spans ``matvec.top_down`` / ``matvec.leaf``
  / ``matvec.bottom_up`` accumulate the phase breakdown used in the
  scaling figures.

Both obtain their per-mesh artifacts — gather/scatter CSR, element
sizes, the flattened traversal slot table — from the shared
:class:`repro.core.plan.OperatorContext`, so repeated operator
construction on the same mesh re-derives nothing.  The traversal leaf
phase is vectorized: maximal SFC-contiguous blocks of elements with
identity slot rows (no hanging slots — the common case away from level
transitions) are applied as one batched matmul instead of per-element
Python calls.
"""

from __future__ import annotations

import numpy as np

from ..kernels import api as kernels
from ..obs import span
from .mesh import IncompleteMesh
from .octant import max_level
from .plan import OperatorContext, TraversalPlan, operator_context

__all__ = ["MapBasedMatVec", "traversal_matvec", "TraversalPlan"]


class MapBasedMatVec:
    """Element-to-node-map matrix-free operator for a scalar PDE term.

    ``kind`` selects the elemental kernel: ``"stiffness"`` (Poisson),
    ``"mass"``, or a callable ``f(u_loc, h) -> w_loc`` for custom
    operators (e.g. the Navier–Stokes blocks).
    """

    def __init__(
        self,
        mesh: IncompleteMesh,
        kind="stiffness",
        nquad=None,
        ctx: OperatorContext | None = None,
    ):
        self.mesh = mesh
        self.ctx = ctx if ctx is not None else operator_context(mesh)
        self.ref = self.ctx.ref(nquad)
        self.h = self.ctx.h
        if callable(kind):
            self._apply_loc = kind
        elif kind == "stiffness":
            self._apply_loc = lambda u, h: self.ref.apply_stiffness(u, h)
        elif kind == "mass":
            self._apply_loc = lambda u, h: self.ref.apply_mass(u, h)
        else:
            raise ValueError(f"unknown kind {kind!r}")
        self._gather = self.ctx.gather
        self._scatter = self.ctx.scatter
        # FLOPs of the path as executed: CSR gather (2·nnz) + batched
        # dense elemental apply + CSR scatter (2·nnz) — not the
        # historical per-element-only count, so roofline attribution
        # matches the identity-block batched code that actually runs
        self._flops = (
            4 * self._gather.nnz
            + mesh.n_elem * self.ref.matvec_flops_per_element()
        )

    def __call__(self, u: np.ndarray) -> np.ndarray:
        npe = self.mesh.npe
        with span("matvec.apply", merge=True) as sp:
            u_loc = kernels.gather(self._gather, u).reshape(
                self.mesh.n_elem, npe
            )
            w_loc = self._apply_loc(u_loc, self.h)
            out = kernels.scatter(self._scatter, w_loc.reshape(-1))
            sp.add("elements", self.mesh.n_elem)
            sp.add("flops", self._flops)
        return out

    @property
    def shape(self):
        n = self.mesh.n_nodes
        return (n, n)

    @property
    def dtype(self):
        return np.float64

    def flops(self) -> int:
        """Double-precision FLOPs of one full MATVEC as executed:
        sparse gather + batched elemental apply + sparse scatter."""
        return self._flops

    def traffic_bytes(self) -> int:
        """Modelled bytes moved by one MATVEC as executed: the
        gather/scatter CSR arrays (data + indices + indptr, read once
        each) plus the vector traffic (global input/output, the
        element-local temporaries, and the per-element h scale)."""
        g = self._gather
        csr = 2 * (g.data.nbytes + g.indices.nbytes + g.indptr.nbytes)
        vec = 8 * (
            2 * self.mesh.n_nodes
            + 2 * self.mesh.n_elem * self.ref.npe
            + self.mesh.n_elem
        )
        return csr + vec


def traversal_matvec(
    mesh: IncompleteMesh,
    u: np.ndarray,
    kind: str = "stiffness",
    plan: TraversalPlan | None = None,
    owned_range: tuple[int, int] | None = None,
) -> np.ndarray:
    """Traversal-based matrix-free MATVEC (§3.5).

    ``owned_range=(lo, hi)`` restricts the traversal to subtrees
    containing the owned elements (the distributed-memory augmentation);
    contributions involving only non-owned elements are skipped.

    The top-down / leaf / bottom-up phase breakdown is published as
    merge spans under a ``matvec.traversal`` span when tracing is on.

    Backends with a *flat* traversal (einsum, numba — see
    :mod:`repro.kernels`) execute the same slot table without the tree
    recursion; the default numpy backend runs the recursive reference
    walk below, bit-identical to the pre-kernel-layer code.
    """
    ctx = operator_context(mesh)
    if plan is None:
        plan = ctx.traversal
    ref = ctx.ref()
    if kind == "stiffness":
        ker, pw = ref.K_ref, mesh.dim - 2
    elif kind == "mass":
        ker, pw = ref.M_ref, mesh.dim
    else:
        raise ValueError(f"unknown kind {kind!r}")

    dim = mesh.dim
    m = max_level(dim)
    p = mesh.p
    e_lo, e_hi = owned_range if owned_range is not None else (0, mesh.n_elem)

    flat = kernels.traversal_apply(
        plan, np.asarray(u, float), ker, pw, e_lo, e_hi
    )
    if flat is not None:
        return flat

    out = np.zeros_like(u)
    two_p = 2 * p

    coords = plan.coords
    keys, levels, h = plan.keys, plan.levels, plan.h

    # the traversal carries a stack of (ids, vals, out_vals) bucket
    # frames, one per tree level on the current path; hanging-slot
    # donors missing from a leaf's own bucket are interpolated from the
    # nearest ancestor bucket that holds them ("interpolated from the
    # immediate parent" in the paper — ancestors, for hanging chains)
    frames: list[list] = []

    def _leaf_apply(e: int) -> None:
        with span("matvec.leaf", merge=True) as lsp:
            sidx, gid, sw = plan.rows(e)
            # locate each needed node in the deepest frame that carries it
            val_in = np.empty(len(gid))
            frame_of = np.empty(len(gid), np.int64)
            pos_of = np.empty(len(gid), np.int64)
            todo = np.arange(len(gid))
            for fi in range(len(frames) - 1, -1, -1):
                if len(todo) == 0:
                    break
                ids_f = frames[fi][0]
                pos = np.searchsorted(ids_f, gid[todo])
                posc = np.clip(pos, 0, max(len(ids_f) - 1, 0))
                hit = (
                    (pos < len(ids_f)) & (ids_f[posc] == gid[todo])
                    if len(ids_f)
                    else np.zeros(len(todo), bool)
                )
                sel = todo[hit]
                frame_of[sel] = fi
                pos_of[sel] = posc[hit]
                val_in[sel] = frames[fi][1][posc[hit]]
                todo = todo[~hit]
            if len(todo):
                raise RuntimeError("traversal path missing elemental nodes")
            u_loc = np.zeros(ref.npe)
            np.add.at(u_loc, sidx, sw * val_in)
            w_loc = (h[e] ** pw) * (ker @ u_loc)
            contrib = sw * w_loc[sidx]
            for fi in np.unique(frame_of):
                sel = frame_of == fi
                np.add.at(frames[fi][2], pos_of[sel], contrib[sel])
            lsp.add("elements", 1)

    def _leaf_apply_batch(a: int, b: int) -> None:
        """Apply an SFC-contiguous block of identity (non-hanging)
        elements as one batched matmul against the current bucket."""
        with span("matvec.leaf", merge=True) as lsp:
            ids_f, vals_f, out_f = frames[-1]
            gid = plan.identity_gids(a, b)
            pos = np.searchsorted(ids_f, gid)
            posc = np.clip(pos, 0, max(len(ids_f) - 1, 0))
            if len(ids_f) == 0 or not np.all(ids_f[posc] == gid):
                raise RuntimeError("traversal path missing elemental nodes")
            u_loc = vals_f[posc]
            w_loc = (h[a:b] ** pw)[:, None] * (u_loc @ ker.T)
            np.add.at(out_f, posc, w_loc)
            lsp.add("elements", b - a)

    def recurse(lo: int, hi: int, box_lo: np.ndarray, level: int) -> None:
        a_own, b_own = max(lo, e_lo), min(hi, e_hi)
        if a_own < b_own and plan.all_identity(a_own, b_own):
            _leaf_apply_batch(a_own, b_own)
            return
        if hi - lo == 1 and levels[lo] == level:
            _leaf_apply(lo)
            return
        half = np.int64(1) << np.int64(m - level - 1)
        for c in range(1 << dim):
            empty = False
            with span("matvec.top_down", merge=True) as tsp:
                off = np.array([(c >> j) & 1 for j in range(dim)], np.int64)
                c_lo = box_lo + off * half
                ck = plan.oracle.keys_from_coords(
                    c_lo.astype(np.uint32)[None, :], dim
                )[0]
                kspan = np.uint64(1) << np.uint64(dim * (m - level - 1))
                a = int(np.searchsorted(keys, ck, side="left"))
                b = int(np.searchsorted(keys, ck + kspan, side="left"))
                a, b = max(a, lo), min(b, hi)
                if a >= b or b <= e_lo or a >= e_hi:
                    empty = True
                else:
                    # bucket: nodes incident on the closed child box
                    # (2p units)
                    ids, vals, out_vals = frames[-1]
                    nlo = two_p * c_lo
                    nhi = two_p * (c_lo + half)
                    pts = coords[ids]
                    sel = np.flatnonzero(
                        np.all((pts >= nlo) & (pts <= nhi), axis=1)
                    )
                    frames.append([ids[sel], vals[sel], np.zeros(len(sel))])
                    tsp.add("bucketed_nodes", len(sel))
            if empty:
                continue
            recurse(a, b, c_lo, level + 1)
            with span("matvec.bottom_up", merge=True) as bsp:
                child = frames.pop()
                np.add.at(out_vals, sel, child[2])
                bsp.add("merged_nodes", len(sel))

    ids0 = np.arange(mesh.n_nodes, dtype=np.int64)
    with span("matvec.traversal"):
        frames.append([ids0, np.asarray(u, float), np.zeros(mesh.n_nodes)])
        recurse(0, mesh.n_elem, np.zeros(dim, np.int64), 0)
    out[:] = frames[0][2]
    return out
