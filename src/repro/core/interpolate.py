"""Field evaluation and mesh-to-mesh transfer on incomplete octrees.

Supports the workflow the paper's fast re-meshing enables: when the
geometry moves or the refinement changes, rebuild the mesh (cheap, by
design) and *transfer* the solution — each target point is located in a
source leaf (corner-perturbed SFC point location, the same machinery as
the hanging-node donor search) and evaluated through the source
element's shape functions composed with its hanging interpolation, so
the transferred field is exactly the conforming FE function.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..fem.basis import LagrangeBasis, local_node_offsets
from .mesh import IncompleteMesh
from .octant import max_level
from .plan import operator_context

__all__ = ["locate_points", "evaluation_matrix", "evaluate_field", "transfer_field"]


def locate_points(mesh: IncompleteMesh, pts: np.ndarray) -> np.ndarray:
    """Containing leaf index per physical point (−1 outside the mesh).

    Points on cell boundaries resolve to any containing leaf; field
    evaluation is continuous there so the choice is immaterial.
    """
    dim = mesh.dim
    m = max_level(dim)
    plan = operator_context(mesh).traversal
    oracle, keys, ends = plan.oracle, plan.keys, plan.ends
    # scale to fractional anchor units, probe the 2^dim surrounding cells
    frac = np.asarray(pts, float) / mesh.domain.scale * (1 << m)
    dirs = 2 * local_node_offsets(1, dim) - 1
    eps = 0.25
    out = np.full(len(frac), -1, np.int64)
    for d in dirs:
        cand = np.floor(frac + eps * d).astype(np.int64)
        ok_dom = np.all((cand >= 0) & (cand < (1 << m)), axis=1)
        cand = np.clip(cand, 0, (1 << m) - 1)
        ck = oracle.keys_from_coords(cand.astype(np.uint32), dim)
        idx = np.searchsorted(keys, ck, side="right") - 1
        idxc = np.clip(idx, 0, len(keys) - 1)
        hit = ok_dom & (idx >= 0) & (ck >= keys[idxc]) & (ck < ends[idxc])
        # the candidate cell must actually contain the point (closed)
        lo = mesh.leaves.anchors.astype(np.int64)[idxc]
        hi = lo + mesh.leaves.sizes.astype(np.int64)[idxc][:, None]
        inside = np.all((frac >= lo - 1e-9) & (frac <= hi + 1e-9), axis=1)
        hit &= inside
        out = np.where((out < 0) & hit, idxc, out)
    return out


def evaluation_matrix(
    mesh: IncompleteMesh, pts: np.ndarray, strict: bool = True
) -> tuple[sp.csr_matrix, np.ndarray]:
    """Sparse E with ``E @ u`` = the FE field at ``pts``.

    Returns ``(E, found)``; rows of points outside the mesh are zero
    (and flagged False in ``found``).  ``strict=True`` raises instead.
    """
    dim, p = mesh.dim, mesh.p
    basis = LagrangeBasis(p, dim)
    m = max_level(dim)
    leaf = locate_points(mesh, pts)
    found = leaf >= 0
    if strict and not found.all():
        raise ValueError(
            f"{int((~found).sum())} evaluation points lie outside the mesh"
        )
    frac = np.asarray(pts, float) / mesh.domain.scale * (1 << m)
    safe = np.where(found, leaf, 0)
    a = mesh.leaves.anchors.astype(np.int64)[safe]
    s = mesh.leaves.sizes.astype(np.int64)[safe]
    xi = np.clip((frac - a) / s[:, None], 0.0, 1.0)
    N = basis.eval(xi)
    g = operator_context(mesh).gather
    npe = mesh.npe
    rows, cols, vals = [], [], []
    indptr, indices, data = g.indptr, g.indices, g.data
    for i in np.flatnonzero(found):
        e = int(leaf[i])
        r0, r1 = indptr[e * npe], indptr[(e + 1) * npe]
        slot = np.repeat(
            np.arange(npe), np.diff(indptr[e * npe : (e + 1) * npe + 1])
        )
        w = N[i, slot] * data[r0:r1]
        nz = w != 0.0
        rows.append(np.full(int(nz.sum()), i, np.int64))
        cols.append(indices[r0:r1][nz])
        vals.append(w[nz])
    if rows:
        E = sp.csr_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(len(pts), mesh.n_nodes),
        )
    else:
        E = sp.csr_matrix((len(pts), mesh.n_nodes))
    E.sum_duplicates()
    return E, found


def evaluate_field(
    mesh: IncompleteMesh, u: np.ndarray, pts: np.ndarray, strict: bool = True
) -> np.ndarray:
    """Evaluate the conforming FE function at arbitrary points."""
    E, _ = evaluation_matrix(mesh, pts, strict)
    return E @ u


def transfer_field(
    src: IncompleteMesh, dst: IncompleteMesh, u: np.ndarray
) -> np.ndarray:
    """Interpolate a nodal field from one mesh onto another.

    Destination nodes outside the source mesh (the voxel boundary moved
    — e.g. a translated object) keep the value of the nearest source
    node, so the transfer is total.
    """
    pts = dst.node_coords()
    E, found = evaluation_matrix(src, pts, strict=False)
    out = E @ np.asarray(u, float)
    if not found.all():
        from scipy.spatial import cKDTree

        tree = cKDTree(src.node_coords())
        _, nearest = tree.query(pts[~found])
        out[~found] = np.asarray(u, float)[nearest]
    return out
