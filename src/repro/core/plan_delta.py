"""Incremental operator-plan updates: the :class:`~repro.core.plan.PlanDelta` path.

A refine/coarsen step that changes a few percent of the leaves used to
pay a full node-enumeration + gather rebuild.  This module splices the
old :class:`~repro.core.nodes.MeshNodes` instead: it diffs the sorted
leaf arrays (:func:`repro.core.plan.diff_leaves`), determines the set of
elements whose interpolation rows can change — the changed leaves, the
unchanged leaves geometrically adjacent to them, and the transitive
donor-chain closure of both — and recomputes *only* those, reusing every
other element's gather rows, global node ids (monotonically remapped)
and carved/boundary flags verbatim.

The result is **bit-identical** to a full rebuild (same node order, same
gather CSR bytes, same fingerprint-derived operators):

* global node ids are assigned in sorted-coordinate order, so the
  old → new id map is monotone and spliced CSR rows stay canonical;
* hanging rows are re-resolved with the exact full-build algorithm
  (:func:`repro.core.nodes._hanging_entries`) against the *raw* stored
  donor weight rows, so chained floating-point accumulation replays in
  the same order;
* only coordinates emitted by a changed leaf can change their
  ordinary/cancellation status, and every element emitting such a
  coordinate is geometrically adjacent to the changed region — the
  adjacency search (corner probes into SFC key intervals) is exact for
  dyadic boxes, not a heuristic.

:func:`assert_plan_equivalent` is the equivalence gate: it compares two
meshes' plans array-for-array (and optionally a stiffness matvec) and is
asserted on every AMR step when ``check_equivalence`` is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np
import scipy.sparse as sp

from ..fem.basis import LagrangeBasis, local_node_offsets
from ..obs import span
from .mesh import IncompleteMesh, mesh_from_leaves
from .nodes import (
    MeshNodes,
    _element_node_coords,
    _find_donors,
    _hanging_entries,
    cancellation_offsets,
)
from .octant import OctantSet, max_level
from .plan import PlanDelta, diff_leaves, mesh_fingerprint
from .sfc import cached_keys, get_curve
from .treesort import block_ends

__all__ = [
    "PlanUpdateReport",
    "update_mesh",
    "assert_plan_equivalent",
    "coord_sort_keys",
]


@dataclass
class PlanUpdateReport:
    """What an :func:`update_mesh` call reused and recomputed.

    Attached to the returned mesh as ``mesh._plan_update`` so downstream
    consumers (e.g. :func:`repro.parallel.ghost.update_exchange_plan`)
    can patch their own artifacts with the same delta.
    """

    delta: PlanDelta
    #: per-new-element True where the gather rows were spliced verbatim
    #: (False: recomputed — changed, adjacent, or donor-chain dirty)
    clean_new: np.ndarray
    #: old global node id → new global node id (-1: node vanished)
    gid_map: np.ndarray
    incremental: bool


def coord_sort_keys(coords: np.ndarray) -> np.ndarray:
    """Byte keys whose lexicographic order equals ``np.lexsort(coords.T)``.

    The node build sorts coordinates with the *last* column as primary
    key; encoding the reversed columns big-endian gives byte strings
    whose bytewise order matches, enabling O(log n) sorted merges and
    membership tests against the node coordinate table.  (Coordinates
    are non-negative; int64 bit-packing would overflow at 2-D max_level.)
    """
    dim = coords.shape[1]
    rev = np.ascontiguousarray(coords[:, ::-1]).astype(">i8")
    return rev.view(f"S{8 * dim}").ravel()


def _make_ckey(p: int, dim: int):
    """Coordinate sort-key encoder for one (p, dim) mesh family.

    Returns a function mapping ``(n, dim)`` node coordinates (2p-scaled
    anchor units) to scalar keys whose order equals the node build's
    ``np.lexsort`` order.  When every axis fits in ``64 // dim`` bits
    the keys are packed uint64 words (fast sorts and searches); the
    byte-string encoding of :func:`coord_sort_keys` is the general
    fallback.  The choice is a pure function of (p, dim), so every
    array compared within one mesh family uses the same encoding.
    """
    m = max_level(dim)
    shift = np.uint64(64 // dim)
    if (2 * p) << m < (1 << (64 // dim)):

        def ckey(coords: np.ndarray) -> np.ndarray:
            k = coords[:, -1].astype(np.uint64)
            for ax in range(dim - 2, -1, -1):
                k = (k << shift) | coords[:, ax].astype(np.uint64)
            return k

        return ckey
    return coord_sort_keys


def _ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], starts[i]+counts[i])`` ranges."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, np.int64)
    rep = np.repeat(starts.astype(np.int64), counts)
    offs = np.arange(total, dtype=np.int64) - np.repeat(
        np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(np.int64), counts
    )
    return rep + offs


def _in_blocks(pkeys: np.ndarray, bkeys: np.ndarray, bends: np.ndarray):
    """Membership of probe keys in a sorted, disjoint SFC block list."""
    if len(bkeys) == 0:
        return np.zeros(len(pkeys), bool)
    j = np.searchsorted(bkeys, pkeys, side="right") - 1
    jc = np.clip(j, 0, len(bkeys) - 1)
    return (j >= 0) & (pkeys < bends[jc])


def _corner_probe_cells(anchors: np.ndarray, sizes: np.ndarray, dim: int):
    """Finest-level cells incident to every vertex of every box.

    Returns ``(cells, ok)`` with ``cells`` of shape
    ``(k * 4^dim, dim)``: for each box, its ``2^dim`` vertices each
    probed via the ``2^dim`` finest cells incident at the vertex.  A
    vertex lies in the closure of a dyadic box iff one of its incident
    finest cells is inside that box, which turns closed-box adjacency
    into exact SFC interval membership.
    """
    m = max_level(dim)
    verts = local_node_offsets(1, dim).astype(np.int64)  # {0,1}^dim
    V = anchors[:, None, :] + verts[None, :, :] * sizes[:, None, None]
    C = V[:, :, None, :] - verts[None, None, :, :]
    C = C.reshape(-1, dim)
    ok = np.all((C >= 0) & (C < (1 << m)), axis=1)
    return C, ok


def _pack_cells(cells: np.ndarray, dim: int) -> np.ndarray:
    """Pack finest-level cell coordinates into single uint64 words.

    Always representable: ``dim * max_level(dim) <= 63`` bits.  Used to
    deduplicate probe cells cheaply before the (costlier) SFC keying —
    adjacent boxes share most of their corner-probe cells.
    """
    m = max_level(dim)
    packed = cells[:, 0].astype(np.uint64)
    for ax in range(1, dim):
        packed |= cells[:, ax].astype(np.uint64) << np.uint64(ax * m)
    return packed


def update_mesh(
    old_mesh: IncompleteMesh,
    new_leaves: OctantSet,
    *,
    delta: PlanDelta | None = None,
    churn_limit: float = 0.5,
) -> tuple[IncompleteMesh, PlanDelta]:
    """Build the mesh of ``new_leaves`` incrementally from ``old_mesh``.

    ``new_leaves`` must be SFC-sorted and 2:1 balanced (the caller
    refines/coarsens and re-balances first, exactly as for
    :func:`repro.core.mesh.mesh_from_leaves` with ``balance=False``).
    Falls back to a full rebuild when the churn exceeds
    ``churn_limit`` or the old mesh predates the raw hanging-data
    storage; the returned delta's ``incremental`` flag records which
    path ran.  The incremental result is bit-identical to the full
    rebuild (see :func:`assert_plan_equivalent`).
    """
    curve = old_mesh.curve
    if delta is None:
        delta = diff_leaves(old_mesh.leaves, new_leaves, curve)
    can_inc = (
        old_mesh.nodes.hang_elem is not None
        and delta.churn <= churn_limit
        and delta.prefix + delta.suffix > 0
    )
    if not can_inc:
        mesh = mesh_from_leaves(
            old_mesh.domain, new_leaves, old_mesh.p, curve, balance=False
        )
        delta = replace(delta, incremental=False)
        mesh._plan_update = PlanUpdateReport(
            delta=delta,
            clean_new=np.zeros(len(new_leaves), bool),
            gid_map=np.full(old_mesh.n_nodes, -1, np.int64),
            incremental=False,
        )
        return mesh, delta
    with span("plan.delta_update") as osp:
        if delta.identical:
            nodes, labels = old_mesh.nodes, old_mesh.labels
            clean = np.ones(delta.n_new, bool)
            gid_map = np.arange(old_mesh.n_nodes, dtype=np.int64)
        else:
            nodes, labels, clean, gid_map = _incremental_update(
                old_mesh, new_leaves, delta
            )
        osp.add("elements", len(new_leaves))
        osp.add("changed", delta.n_changed_new)
        osp.add("recomputed", int((~clean).sum()))
        osp.add("reused", int(clean.sum()))
    delta = replace(delta, incremental=True)
    mesh = IncompleteMesh(
        old_mesh.domain, new_leaves, labels, nodes, old_mesh.p,
        get_curve(curve).name,
    )
    mesh._plan_update = PlanUpdateReport(
        delta=delta, clean_new=clean, gid_map=gid_map, incremental=True
    )
    return mesh, delta


def _incremental_update(
    old_mesh: IncompleteMesh, new_leaves: OctantSet, delta: PlanDelta
):
    domain = old_mesh.domain
    p, dim = old_mesh.p, old_mesh.dim
    npe = (p + 1) ** dim
    m = max_level(dim)
    oracle = get_curve(old_mesh.curve)
    old_leaves = old_mesh.leaves
    on = old_mesh.nodes
    n_old, n_new = delta.n_old, delta.n_new
    P, S = delta.prefix, delta.suffix
    shift = n_new - n_old
    chg_old = delta.changed_old()
    chg_new = delta.changed_new()
    basis = LagrangeBasis(p, dim)
    ord_off = local_node_offsets(p, dim)
    canc_off = cancellation_offsets(p, dim)
    ckey = _make_ckey(p, dim)

    def emissions(leaves: OctantSet, idx: np.ndarray):
        sub = leaves[idx]
        o = _element_node_coords(sub, 2 * ord_off, p).reshape(-1, dim)
        c = _element_node_coords(sub, canc_off, p).reshape(-1, dim)
        return o, c

    # ---- A: the coordinates whose emitter set changes ------------------
    # Only changed leaves alter any coordinate's ordinary/cancellation
    # emission multiset, so A = emissions(changed_old) ∪ emissions(changed_new).
    o_old, c_old = emissions(old_leaves, chg_old)
    o_new, c_new = emissions(new_leaves, chg_new)
    A_all = np.concatenate([o_old, c_old, o_new, c_new])
    A_keys_all = ckey(A_all)
    A_keys, first = np.unique(A_keys_all, return_index=True)
    A_coords = A_all[first]

    def in_A(keys: np.ndarray):
        pos = np.searchsorted(A_keys, keys)
        posc = np.clip(pos, 0, max(len(A_keys) - 1, 0))
        if len(A_keys) == 0:
            return np.zeros(len(keys), bool), posc
        return (pos < len(A_keys)) & (A_keys[posc] == keys), posc

    # ---- adjacency: unchanged elements touching the changed region -----
    old_keys = cached_keys(old_leaves, oracle)
    old_ends = block_ends(old_keys, old_leaves.levels, dim)
    new_keys = cached_keys(new_leaves, oracle)
    new_ends = block_ends(new_keys, new_leaves.levels, dim)
    a_o = old_leaves.anchors.astype(np.int64)[chg_old]
    s_o = old_leaves.sizes.astype(np.int64)[chg_old]
    a_n = new_leaves.anchors.astype(np.int64)[chg_new]
    s_n = new_leaves.sizes.astype(np.int64)[chg_new]
    cb_a = np.concatenate([a_o, a_n])
    cb_s = np.concatenate([s_o, s_n])
    touched_mask = np.zeros(n_new, bool)

    unchanged_new = np.concatenate(
        [np.arange(P, dtype=np.int64), np.arange(n_new - S, n_new, dtype=np.int64)]
    )
    if len(cb_a) and len(unchanged_new):
        box_lo = cb_a.min(axis=0)
        box_hi = (cb_a + cb_s[:, None]).max(axis=0)
        ua = new_leaves.anchors.astype(np.int64)[unchanged_new]
        us = new_leaves.sizes.astype(np.int64)[unchanged_new]
        cand_m = np.all((ua <= box_hi) & (ua + us[:, None] >= box_lo), axis=1)
        cand = unchanged_new[cand_m]
        # (b) unchanged-leaf vertices probed into the changed key blocks:
        # catches every touching pair where the unchanged leaf is the
        # smaller (or equal) box
        if len(cand):
            C, ok = _corner_probe_cells(
                new_leaves.anchors.astype(np.int64)[cand],
                new_leaves.sizes.astype(np.int64)[cand],
                dim,
            )
            hit = np.zeros(len(C), bool)
            if ok.any():
                pk = oracle.keys_from_coords(
                    C[ok].astype(np.uint32), dim
                )
                hit[ok] = _in_blocks(
                    pk, old_keys[chg_old], old_ends[chg_old]
                ) | _in_blocks(pk, new_keys[chg_new], new_ends[chg_new])
            hit_e = hit.reshape(len(cand), -1).any(axis=1)
            touched_mask[cand[hit_e]] = True
        # (a) changed-box vertices located in the new tree: catches every
        # touching pair where the changed box is the smaller (or equal).
        # Adjacent changed boxes share most probe cells — dedup via the
        # packed-uint64 representation before the costlier SFC keying.
        C2, ok2 = _corner_probe_cells(cb_a, cb_s, dim)
        if ok2.any():
            uq_cells = np.unique(_pack_cells(C2[ok2], dim))
            m_bits = np.uint64(max_level(dim))
            mask_ax = np.uint64((1 << max_level(dim)) - 1)
            cells = np.empty((len(uq_cells), dim), np.uint32)
            for ax in range(dim):
                cells[:, ax] = (uq_cells >> (np.uint64(ax) * m_bits)) & mask_ax
            pk2 = oracle.keys_from_coords(cells, dim)
            j = np.searchsorted(new_keys, pk2, side="right") - 1
            jc = np.clip(j, 0, n_new - 1)
            inside = (j >= 0) & (pk2 < new_ends[jc])
            touched_mask[jc[inside]] = True
    touched_mask[chg_new] = False  # adjacency is about *unchanged* leaves
    touched_new = np.flatnonzero(touched_mask)

    def new2old(idx: np.ndarray) -> np.ndarray:
        return np.where(idx < P, idx, idx - shift)

    def old2new(idx: np.ndarray) -> np.ndarray:
        return np.where(idx < P, idx, idx + shift)

    # ---- dirty-chain propagation (old index space) ---------------------
    # An unchanged element whose donor chain passes through a changed or
    # adjacent element needs its hanging rows re-resolved.
    he_o = on.hang_elem
    hi_o = on.hang_slot
    hd_o = on.hang_donor
    dirty = np.zeros(n_old, bool)
    dirty[chg_old] = True
    dirty[new2old(touched_new)] = True
    if len(he_o):
        while True:
            add = dirty[hd_o] & ~dirty[he_o]
            if not add.any():
                break
            dirty[he_o[add]] = True
    chg_old_mask = np.zeros(n_old, bool)
    chg_old_mask[chg_old] = True
    extra_old = np.flatnonzero(dirty & ~chg_old_mask)
    R_new = np.unique(np.concatenate([chg_new, old2new(extra_old)]))
    R_mask = np.zeros(n_new, bool)
    R_mask[R_new] = True
    clean_new = ~R_mask
    clean_old_mask = ~dirty  # clean in old index space

    # ---- new status of the A-coordinates -------------------------------
    # Every new-mesh emitter of an A-coordinate is changed or adjacent.
    has_ord = np.zeros(len(A_keys), bool)
    has_canc = np.zeros(len(A_keys), bool)
    o_t, c_t = emissions(new_leaves, touched_new)
    for coords_part, flag in (
        (np.concatenate([o_new, o_t]), has_ord),
        (np.concatenate([c_new, c_t]), has_canc),
    ):
        inside, posc = in_A(ckey(coords_part))
        flag[posc[inside]] = True
    A_is_dof = has_ord & ~has_canc

    # ---- splice the global DOF table -----------------------------------
    # old coords are stored in lexsort order, so their byte keys are
    # already sorted: membership and merge positions are found by
    # probing the *small* churn-sized arrays into the big sorted one
    old_k = getattr(on, "_sort_keys", None)
    if old_k is None:
        old_k = ckey(on.coords)
        on._sort_keys = old_k
    in_A_old = np.zeros(on.n_glob, bool)
    if len(A_keys):
        posA = np.searchsorted(old_k, A_keys)
        posAc = np.clip(posA, 0, max(on.n_glob - 1, 0))
        foundA = (posA < on.n_glob) & (old_k[posAc] == A_keys)
        in_A_old[posAc[foundA]] = True
    kept_idx = np.flatnonzero(~in_A_old)
    kept_k = old_k[kept_idx]
    ins_k = A_keys[A_is_dof]
    ins_coords = A_coords[A_is_dof]
    n_glob = len(kept_idx) + len(ins_k)
    ins_pos = np.arange(len(ins_k), dtype=np.int64) + np.searchsorted(
        kept_k, ins_k
    )
    kept_mask_new = np.ones(n_glob, bool)
    kept_mask_new[ins_pos] = False
    kept_pos = np.flatnonzero(kept_mask_new)
    coords_new = np.empty((n_glob, dim), on.coords.dtype)
    coords_new[kept_pos] = on.coords[kept_idx]
    coords_new[ins_pos] = ins_coords
    gid_map = np.full(on.n_glob, -1, np.int64)
    gid_map[kept_idx] = kept_pos
    old_A_idx = np.flatnonzero(in_A_old)
    if len(old_A_idx) and len(ins_k):
        p2 = np.searchsorted(ins_k, old_k[old_A_idx])
        p2c = np.clip(p2, 0, len(ins_k) - 1)
        hit = (p2 < len(ins_k)) & (ins_k[p2c] == old_k[old_A_idx])
        gid_map[old_A_idx[hit]] = ins_pos[p2c[hit]]

    h_node = on.h_node
    carved_new = np.empty(n_glob, bool)
    carved_new[kept_pos] = on.carved_node[kept_idx]
    carved_new[ins_pos] = domain.carved_points(
        ins_coords.astype(np.float64) * h_node
    )
    extent = 2 * p * (1 << m)
    db_new = np.empty(n_glob, bool)
    db_new[kept_pos] = on.domain_boundary[kept_idx]
    db_new[ins_pos] = np.any(
        (ins_coords == 0) | (ins_coords == extent), axis=1
    )

    # ---- elem_nodes: splice clean rows, look up recomputed rows --------
    elem_nodes = np.empty((n_new, npe), np.int64)
    # sentinel: index -1 reads the appended -1, so hanging slots (-1)
    # map to -1 without a mask pass.  The unchanged windows are copied
    # as contiguous slices; rows in R inside them are overwritten by the
    # fresh lookup below.
    gmap_ext = np.append(gid_map, np.int64(-1))
    vanished_rows = []
    if P:
        elem_nodes[:P] = gmap_ext[on.elem_nodes[:P]]
        van = (elem_nodes[:P] < 0) & (on.elem_nodes[:P] >= 0)
        if van.any():
            vanished_rows.append(np.flatnonzero(van.any(axis=1)))
    if S:
        elem_nodes[n_new - S :] = gmap_ext[on.elem_nodes[n_old - S :]]
        van = (elem_nodes[n_new - S :] < 0) & (on.elem_nodes[n_old - S :] >= 0)
        if van.any():
            vanished_rows.append(np.flatnonzero(van.any(axis=1)) + (n_new - S))
    if vanished_rows:
        # only rows recomputed below may reference vanished nodes
        if not R_mask[np.concatenate(vanished_rows)].all():
            raise RuntimeError(
                "incremental node splice: clean element references a "
                "vanished node — adjacency closure is incomplete"
            )
    new_k = ckey(coords_new)
    if len(R_new):
        xyzR = _element_node_coords(
            new_leaves[R_new], 2 * ord_off, p
        ).reshape(-1, dim)
        kR = ckey(xyzR)
        pos = np.searchsorted(new_k, kR)
        posc = np.clip(pos, 0, max(n_glob - 1, 0))
        hit = (pos < n_glob) & (new_k[posc] == kR)
        rowsR = np.where(hit, posc, np.int64(-1))
        elem_nodes[R_new] = rowsR.reshape(len(R_new), npe)

    # ---- hanging resolution for the recompute set ----------------------
    he_r_loc, hi_r = np.nonzero(elem_nodes[R_new] < 0)
    he_r = R_new[he_r_loc] if len(R_new) else np.empty(0, np.int64)
    if len(he_r):
        don_r, xi_r = _find_donors(
            domain, new_leaves, he_r, hi_r, p, old_mesh.curve
        )
        W_r = basis.eval(xi_r)
        W_r[np.abs(W_r) < 1e-12] = 0.0
    else:
        don_r = np.empty(0, np.int64)
        W_r = np.empty((0, npe))

    # transitive donor closure: clean donors whose raw rows the resolver
    # must see to replay chained descents (their own rows stay spliced)
    included = R_mask.copy()
    ce_l, ci_l, cd_l, cW_l = [], [], [], []
    frontier = np.unique(don_r[~included[don_r]]) if len(don_r) else (
        np.empty(0, np.int64)
    )
    while len(frontier):
        included[frontier] = True
        f_old = np.sort(new2old(frontier))
        lo = np.searchsorted(he_o, f_old)
        hi = np.searchsorted(he_o, f_old, side="right")
        take = _ranges(lo, hi - lo)
        if len(take) == 0:
            break
        d_nn = old2new(hd_o[take])
        ce_l.append(old2new(he_o[take]))
        ci_l.append(hi_o[take])
        cd_l.append(d_nn)
        cW_l.append(on.hang_W[take])
        frontier = np.unique(d_nn[~included[d_nn]])

    hang_e_all = np.concatenate([he_r] + ce_l) if ce_l else he_r
    hang_i_all = np.concatenate([hi_r] + ci_l) if ci_l else hi_r
    don_all = np.concatenate([don_r] + cd_l) if cd_l else don_r
    W_all = np.concatenate([W_r] + cW_l) if cW_l else W_r

    rows_h = np.empty(0, np.int64)
    cols_h = np.empty(0, np.int64)
    vals_h = np.empty(0, np.float64)
    if len(hang_e_all):
        hr, hc, hv = _hanging_entries(
            elem_nodes, hang_e_all, hang_i_all, don_all, W_all, npe
        )
        if hr:
            rows_h = np.concatenate(hr)
            cols_h = np.concatenate(hc)
            vals_h = np.concatenate(hv)
            keep = R_mask[rows_h // npe]
            # canonical CSR form: rows ascending, columns sorted per row
            order = np.lexsort((cols_h[keep], rows_h[keep]))
            rows_h = rows_h[keep][order]
            cols_h = cols_h[keep][order]
            vals_h = vals_h[keep][order]

    # clean hanging rows to splice verbatim from the old gather
    sel = clean_old_mask[he_o] if len(he_o) else np.empty(0, bool)
    e_oc = he_o[sel]
    i_oc = hi_o[sel]
    d_oc = hd_o[sel]

    # ---- assemble the gather CSR directly (no COO round-trip) ----------
    # Construction yields no duplicate (row, col) pairs, spliced old rows
    # are already column-sorted (sum_duplicates canonicalized them and
    # gid_map is monotone), and the fresh hanging entries were sorted
    # above — so the final CSR can be written segment-by-segment in
    # canonical form, identical byte-for-byte to the full build's.
    flat = elem_nodes.ravel()
    nrows = n_new * npe
    counts = (flat >= 0).astype(np.int64)  # one direct entry per slot
    if len(rows_h):
        counts += np.bincount(rows_h, minlength=nrows).astype(np.int64)
    g = on.gather
    if len(e_oc):
        r_old = e_oc * npe + i_oc
        r_cl = old2new(e_oc) * npe + i_oc
        lo_r = g.indptr[r_old].astype(np.int64)
        cnt = (g.indptr[r_old + 1] - g.indptr[r_old]).astype(np.int64)
        counts[r_cl] = cnt  # disjoint from the R rows above
    indptr = np.zeros(nrows + 1, np.int64)
    np.cumsum(counts, out=indptr[1:])
    nnz = int(indptr[-1])
    indices = np.empty(nnz, np.int64)
    data = np.empty(nnz, np.float64)
    ord_flat = np.flatnonzero(flat >= 0)
    pos0 = indptr[ord_flat]
    indices[pos0] = flat[ord_flat]
    data[pos0] = 1.0
    if len(rows_h):
        grp_start = np.flatnonzero(np.r_[True, rows_h[1:] != rows_h[:-1]])
        grp_sizes = np.diff(np.r_[grp_start, len(rows_h)])
        within = np.arange(len(rows_h), dtype=np.int64) - np.repeat(
            grp_start, grp_sizes
        )
        dest = indptr[rows_h] + within
        indices[dest] = cols_h
        data[dest] = vals_h
    if len(e_oc):
        src = _ranges(lo_r, cnt)
        cols_s = gid_map[g.indices[src]]
        if np.any(cols_s < 0):
            raise RuntimeError(
                "incremental gather splice: clean hanging row references a "
                "vanished node — donor closure is incomplete"
            )
        dest = _ranges(indptr[r_cl], cnt)
        indices[dest] = cols_s
        data[dest] = g.data[src]
    gather = sp.csr_matrix(
        (data, indices, indptr), shape=(nrows, n_glob)
    )

    # ---- raw hanging data of the new nodes ------------------------------
    hang_flat = np.flatnonzero(flat < 0)
    hang_e_new = hang_flat // npe
    hang_i_new = hang_flat % npe
    code_new = hang_flat
    don_new = np.empty(len(code_new), np.int64)
    W_new = np.empty((len(code_new), npe))
    filled = np.zeros(len(code_new), bool)
    if len(he_r):
        pos = np.searchsorted(code_new, he_r * npe + hi_r)
        don_new[pos] = don_r
        W_new[pos] = W_r
        filled[pos] = True
    if len(e_oc):
        pos = np.searchsorted(code_new, old2new(e_oc) * npe + i_oc)
        don_new[pos] = old2new(d_oc)
        W_new[pos] = on.hang_W[sel]
        filled[pos] = True
    if not filled.all():
        raise RuntimeError("incremental hanging-data splice left gaps")

    nodes = MeshNodes(
        p=p,
        dim=dim,
        coords=coords_new,
        elem_nodes=elem_nodes,
        gather=gather,
        carved_node=carved_new,
        domain_boundary=db_new,
        h_node=h_node,
        hang_elem=hang_e_new.astype(np.int64),
        hang_slot=hang_i_new.astype(np.int64),
        hang_donor=don_new,
        hang_W=W_new,
    )
    nodes._sort_keys = new_k  # reused as old_k by the next delta step

    old_labels = np.asarray(old_mesh.labels)
    labels = np.empty(n_new, old_labels.dtype)
    labels[:P] = old_labels[:P]
    if S:
        labels[n_new - S :] = old_labels[n_old - S :]
    if len(chg_new):
        labels[chg_new] = domain.classify_octants(new_leaves[chg_new])

    return nodes, labels, clean_new, gid_map


def assert_plan_equivalent(
    mesh_a: IncompleteMesh,
    mesh_b: IncompleteMesh,
    *,
    matvec_check: bool = True,
) -> None:
    """Assert two meshes carry bit-identical operator plans.

    The incremental-vs-full equivalence gate: fingerprints, node
    coordinates, element connectivity, the gather CSR byte arrays,
    boundary flags and labels must match exactly; optionally one
    deterministic stiffness matvec is compared bit-for-bit as well.
    Raises ``AssertionError`` with the first differing artifact.
    """
    assert mesh_fingerprint(mesh_a) == mesh_fingerprint(mesh_b), "fingerprint"
    na, nb = mesh_a.nodes, mesh_b.nodes
    assert np.array_equal(na.coords, nb.coords), "node coords differ"
    assert np.array_equal(na.elem_nodes, nb.elem_nodes), "elem_nodes differ"
    ga, gb = na.gather.tocsr(), nb.gather.tocsr()
    assert ga.shape == gb.shape, "gather shape differs"
    assert np.array_equal(ga.indptr, gb.indptr), "gather indptr differs"
    assert np.array_equal(ga.indices, gb.indices), "gather indices differ"
    assert np.array_equal(ga.data, gb.data), "gather data differs"
    assert np.array_equal(na.carved_node, nb.carved_node), "carved flags differ"
    assert np.array_equal(
        na.domain_boundary, nb.domain_boundary
    ), "domain-boundary flags differ"
    assert np.array_equal(
        np.asarray(mesh_a.labels), np.asarray(mesh_b.labels)
    ), "labels differ"
    if matvec_check:
        from .matvec import MapBasedMatVec

        x = np.sin(np.arange(mesh_a.n_nodes, dtype=np.float64))
        ya = MapBasedMatVec(mesh_a, kind="stiffness")(x)
        yb = MapBasedMatVec(mesh_b, kind="stiffness")(x)
        assert np.array_equal(ya, yb), "stiffness matvec differs"
