"""Unified operator-plan layer: the per-mesh :class:`OperatorContext`.

The paper's carved incomplete octrees make the *operator* cheap enough
to rebuild and apply at scale — but only if the per-mesh artifacts the
operator needs (gather/scatter CSR, element sizes, reference-element
handles, traversal slot tables, level-grouped element batches) are
derived **once** per mesh rather than once per consumer or, worse, once
per apply.  This module is the single mesh ↔ operator contract shared
by every discretization in the stack:

* :func:`operator_context` returns the mesh's :class:`OperatorContext`,
  computing it on first request and caching it on the mesh behind a
  **content fingerprint** (SFC octant keys + levels + p + curve).  Any
  change of the leaf set — e.g. :mod:`repro.core.adapt` refinement or
  coarsening producing a new mesh — yields a new fingerprint, so stale
  plans are never reused.
* :class:`TraversalPlan` holds the flattened CSR-style traversal slot
  table (``slot_ptr`` / ``slot_idx`` / ``slot_gid`` / ``slot_w`` arrays
  instead of per-element Python lists) plus the SFC key/level arrays the
  §3.5 traversal walks, and the ``identity_elem`` mask that lets the
  leaf phase batch non-hanging elements into one matmul.

Consumers (:class:`repro.core.matvec.MapBasedMatVec`,
:func:`repro.core.matvec.traversal_matvec`,
:func:`repro.core.assembly.assemble`, the Poisson/SBM/transport/NS
operators, multigrid prolongation, and — via
:class:`repro.parallel.ghost.ExchangePlan` — the distributed MATVEC)
all obtain these artifacts here instead of re-deriving them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
import scipy.sparse as sp

from ..fem.elemental import ReferenceElement, reference_element
from ..obs import span
from .octant import OctantSet
from .sfc import get_curve
from .treesort import block_ends

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .mesh import IncompleteMesh

__all__ = [
    "OperatorContext",
    "TraversalPlan",
    "PlanDelta",
    "diff_leaves",
    "operator_context",
    "mesh_fingerprint",
]


def mesh_fingerprint(mesh: IncompleteMesh) -> str:
    """Content fingerprint of the mesh's operator-relevant state.

    Hashes the SFC octant keys, the leaf levels, the element order p and
    the curve name — exactly the inputs every operator artifact is a
    function of.  Refining or coarsening the leaf set (or changing p /
    the curve) changes the fingerprint; relabelling or re-wrapping the
    same leaves does not.
    """
    oracle = get_curve(mesh.curve)
    keys = oracle.keys(mesh.leaves)
    h = hashlib.sha1()
    h.update(np.ascontiguousarray(keys).tobytes())
    h.update(np.ascontiguousarray(mesh.leaves.levels).tobytes())
    h.update(f"|dim={mesh.dim}|p={mesh.p}|curve={mesh.curve}".encode())
    return h.hexdigest()


@dataclass(frozen=True)
class PlanDelta:
    """Positional diff between two SFC-sorted leaf arrays.

    The longest common prefix (``prefix`` leaves) and suffix
    (``suffix`` leaves) over the sorted ``(key, level)`` sequences are
    *unchanged*: element ``i`` of the old mesh is element
    ``old_to_new(i)`` of the new mesh with identical geometry.  The
    windows ``changed_old`` / ``changed_new`` in between are the leaves
    an incremental plan update must treat as removed / added (a leaf
    that merely shifted position inside the window is conservatively
    counted as changed).
    """

    n_old: int
    n_new: int
    prefix: int
    suffix: int
    #: True when the update that produced this delta took the
    #: incremental path (False: full rebuild fallback).
    incremental: bool = False

    @property
    def n_changed_old(self) -> int:
        return self.n_old - self.prefix - self.suffix

    @property
    def n_changed_new(self) -> int:
        return self.n_new - self.prefix - self.suffix

    @property
    def churn(self) -> float:
        """Fraction of the *new* mesh's leaves that are changed."""
        return self.n_changed_new / max(self.n_new, 1)

    @property
    def identical(self) -> bool:
        return self.n_changed_old == 0 and self.n_changed_new == 0

    def changed_old(self) -> np.ndarray:
        return np.arange(self.prefix, self.n_old - self.suffix)

    def changed_new(self) -> np.ndarray:
        return np.arange(self.prefix, self.n_new - self.suffix)

    def old_to_new(self, idx: np.ndarray) -> np.ndarray:
        """Map old element indices to new ones (``-1`` for changed)."""
        idx = np.asarray(idx, np.int64)
        shift = self.n_new - self.n_old
        out = np.where(idx < self.prefix, idx, idx + shift)
        out = np.where(
            (idx >= self.prefix) & (idx < self.n_old - self.suffix), -1, out
        )
        return out

    def new_to_old(self, idx: np.ndarray) -> np.ndarray:
        """Map new element indices to old ones (``-1`` for changed)."""
        idx = np.asarray(idx, np.int64)
        shift = self.n_new - self.n_old
        out = np.where(idx < self.prefix, idx, idx - shift)
        out = np.where(
            (idx >= self.prefix) & (idx < self.n_new - self.suffix), -1, out
        )
        return out

    def unchanged_new_mask(self) -> np.ndarray:
        mask = np.ones(self.n_new, bool)
        mask[self.prefix : self.n_new - self.suffix] = False
        return mask


def diff_leaves(
    old_leaves: OctantSet, new_leaves: OctantSet, curve: str = "morton"
) -> PlanDelta:
    """Diff two SFC-sorted linear octrees into a :class:`PlanDelta`.

    Longest-common-prefix/suffix; ``prefix + suffix`` never exceeds the
    shorter array, so the changed windows are well defined.  Equality is
    tested on ``(anchor, level)`` directly — for SFC-sorted arrays of
    the same curve that coincides with ``(key, level)`` equality and
    avoids recomputing keys.
    """
    a1, l1 = old_leaves.anchors, old_leaves.levels
    a2, l2 = new_leaves.anchors, new_leaves.levels
    n1, n2 = len(old_leaves), len(new_leaves)
    n = min(n1, n2)
    eq = np.all(a1[:n] == a2[:n], axis=1) & (l1[:n] == l2[:n])
    prefix = int(np.argmin(eq)) if not eq.all() else n
    rem = n - prefix
    if rem == 0:
        suffix = 0
    else:
        eq_s = np.all(a1[n1 - rem :] == a2[n2 - rem :], axis=1) & (
            l1[n1 - rem :] == l2[n2 - rem :]
        )
        rev = eq_s[::-1]
        suffix = int(np.argmin(rev)) if not rev.all() else rem
    return PlanDelta(n_old=n1, n_new=n2, prefix=prefix, suffix=suffix)


class TraversalPlan:
    """Flattened slot tables for the traversal MATVEC / assembly (§3.5–3.6).

    For each element, the (slot, gid, weight) triples of its local
    interpolation rows — identity entries for ordinary slots, coarse
    donor weights for hanging slots — extracted once from the gather
    operator and stored CSR-style:

    ``slot_ptr``
        ``(n_elem + 1,)`` int64; element ``e`` owns the triple range
        ``slot_ptr[e]:slot_ptr[e+1]``.
    ``slot_idx`` / ``slot_gid`` / ``slot_w``
        flat local-slot index, global node id, interpolation weight.
    ``identity_elem``
        ``(n_elem,)`` bool; True where the element's rows are the pure
        identity (no hanging slots) — these batch into one matmul in the
        traversal leaf phase.
    """

    def __init__(self, mesh: IncompleteMesh, ctx: OperatorContext | None = None):
        self.mesh = mesh
        g = ctx.gather if ctx is not None else mesh.nodes.gather.tocsr()
        npe = mesh.npe
        n_elem = mesh.n_elem
        indptr, indices, data = g.indptr, g.indices, g.data
        counts = np.diff(indptr)
        self.slot_ptr = indptr[::npe].astype(np.int64)
        self.slot_idx = np.repeat(
            np.arange(n_elem * npe, dtype=np.int64) % npe, counts
        )
        self.slot_gid = indices.astype(np.int64)
        self.slot_w = np.asarray(data, np.float64)
        # identity elements: one unit-weight entry per slot row
        simple_rows = (counts == 1).reshape(n_elem, npe).all(axis=1)
        wdev = np.abs(self.slot_w - 1.0)
        dev_per_elem = np.add.reduceat(wdev, self.slot_ptr[:-1])
        self.identity_elem = simple_rows & (dev_per_elem == 0.0)
        # prefix sums make "is the block [a, b) all-identity?" O(1)
        self._ident_cum = np.concatenate(
            [[0], np.cumsum(self.identity_elem, dtype=np.int64)]
        )
        oracle = get_curve(mesh.curve)
        self.keys = oracle.keys(mesh.leaves)
        self.ends = block_ends(self.keys, mesh.leaves.levels, mesh.dim)
        self.coords = mesh.nodes.coords  # 2p-scaled units
        self.levels = mesh.leaves.levels.astype(np.int64)
        self.h = ctx.h if ctx is not None else mesh.element_sizes()
        self.oracle = oracle

    def rows(self, e: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(slot, gid, weight) triples of element ``e``."""
        lo, hi = self.slot_ptr[e], self.slot_ptr[e + 1]
        return self.slot_idx[lo:hi], self.slot_gid[lo:hi], self.slot_w[lo:hi]

    def all_identity(self, a: int, b: int) -> bool:
        """True when every element in ``[a, b)`` has identity slot rows."""
        return bool(self._ident_cum[b] - self._ident_cum[a] == b - a)

    def identity_gids(self, a: int, b: int) -> np.ndarray:
        """Global node ids of the identity block ``[a, b)``, ``(b-a, npe)``.

        Valid only when :meth:`all_identity` holds for the block (each
        element then owns exactly ``npe`` slot triples in slot order).
        """
        return self.slot_gid[self.slot_ptr[a] : self.slot_ptr[b]].reshape(
            b - a, self.mesh.npe
        )


class OperatorContext:
    """Per-mesh bundle of operator artifacts, computed once per fingerprint.

    Eagerly holds the cheap, universally needed pieces (gather CSR,
    element sizes, levels); derives the rest lazily on first use
    (scatter CSR, traversal plan, level batches, multi-field gathers)
    and keeps them for the lifetime of the mesh.
    """

    def __init__(self, mesh: IncompleteMesh, fingerprint: str | None = None):
        self.mesh = mesh
        #: the exact MeshNodes the context was derived from — checked by
        #: identity in :func:`operator_context` so an in-place swap of
        #: ``mesh.nodes`` (same leaves, hence same fingerprint) rebuilds
        #: instead of silently aliasing stale gather/scatter arrays
        self.nodes = mesh.nodes
        self.fingerprint = (
            fingerprint if fingerprint is not None else mesh_fingerprint(mesh)
        )
        #: element → local-node interpolation operator, CSR
        self.gather: sp.csr_matrix = mesh.nodes.gather.tocsr()
        #: physical element side lengths, (n_elem,)
        self.h: np.ndarray = mesh.element_sizes()
        #: leaf refinement levels, (n_elem,) int64
        self.levels: np.ndarray = mesh.leaves.levels.astype(np.int64)
        self._scatter: sp.csr_matrix | None = None
        self._traversal: TraversalPlan | None = None
        self._level_batches: list[tuple[int, np.ndarray]] | None = None
        self._big_gathers: dict[int, sp.csr_matrix] = {}

    # -- quadrature / reference-element handles -------------------------

    def ref(self, nquad: int | None = None) -> ReferenceElement:
        """The mesh's reference element (shared lru cache per (p, dim))."""
        return reference_element(self.mesh.p, self.mesh.dim, nquad)

    # -- lazily derived artifacts ---------------------------------------

    @property
    def scatter(self) -> sp.csr_matrix:
        """gatherᵀ in CSR — the bottom-up accumulation operator."""
        if self._scatter is None:
            self._scatter = self.gather.T.tocsr()
        return self._scatter

    @property
    def traversal(self) -> TraversalPlan:
        """Flattened traversal slot table (built once per mesh)."""
        if self._traversal is None:
            with span("plan.traversal_build") as sp_:
                self._traversal = TraversalPlan(self.mesh, ctx=self)
                sp_.add("elements", self.mesh.n_elem)
        return self._traversal

    @property
    def level_batches(self) -> list[tuple[int, np.ndarray]]:
        """Element index batches grouped by refinement level.

        Returns ``[(level, indices), ...]`` sorted by level; the union
        of the index arrays is ``arange(n_elem)``.  Uniform-kernel
        consumers use these to apply per-level scalings without
        per-element broadcasting.
        """
        if self._level_batches is None:
            lv = self.levels
            self._level_batches = [
                (int(level), np.flatnonzero(lv == level))
                for level in np.unique(lv)
            ]
        return self._level_batches

    def big_gather(self, nfields: int) -> sp.csr_matrix:
        """Multi-field gather: global ``[f0 | f1 | ...]`` vectors to
        element-local field-major slot vectors (hanging-aware)."""
        got = self._big_gathers.get(nfields)
        if got is not None:
            return got
        g = self.gather.tocoo()
        npe = self.mesh.npe
        n = self.mesh.n_nodes
        ndof = nfields * npe
        e = g.row // npe
        i = g.row % npe
        rows, cols, data = [], [], []
        for f in range(nfields):
            rows.append(e * ndof + f * npe + i)
            cols.append(g.col + f * n)
            data.append(g.data)
        big = sp.csr_matrix(
            (np.concatenate(data), (np.concatenate(rows), np.concatenate(cols))),
            shape=(self.mesh.n_elem * ndof, nfields * n),
        )
        self._big_gathers[nfields] = big
        return big


def operator_context(mesh: IncompleteMesh) -> OperatorContext:
    """The mesh's cached :class:`OperatorContext`.

    The context is stored on the mesh object; it is rebuilt whenever the
    stored fingerprint no longer matches the mesh content (e.g. after
    the leaf set was swapped by refinement/coarsening), so operator
    consumers can never observe a stale plan.
    """
    fp = mesh_fingerprint(mesh)
    ctx = getattr(mesh, "_operator_context", None)
    if (
        ctx is not None
        and ctx.fingerprint == fp
        and ctx.mesh is mesh
        and ctx.nodes is mesh.nodes
    ):
        return ctx
    with span("plan.context_build") as sp_:
        ctx = OperatorContext(mesh, fingerprint=fp)
        sp_.add("elements", mesh.n_elem)
        sp_.add("nodes", mesh.n_nodes)
    mesh._operator_context = ctx
    return ctx
