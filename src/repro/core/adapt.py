"""On-the-fly refinement and coarsening of incomplete octrees.

The paper advertises "on-the-fly refinement and coarsening that matches
the arbitrary function within the refinement tolerance" and lists the
point-cloud criterion ("containing more than a maximal number of points
from an initial point cloud") among the §3.2 refinement drivers.  This
module supplies both directions:

* :func:`refine_leaves` — split marked leaves into their children
  (pruning any carved child);
* :func:`coarsen_leaves` — replace complete sibling groups whose
  members are all marked (and whose parent is not carved) by their
  parent; carved siblings count as implicitly present, so carving never
  blocks coarsening at the boundary;
* :func:`construct_from_points` — Algorithm-1-style construction where
  a leaf splits while it holds more than ``max_points`` cloud points.

All three return SFC-sorted linear octrees; callers re-balance with
:func:`repro.core.balance.balance_2to1` before building nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.predicate import RegionLabel
from .domain import Domain
from .octant import OctantSet, children, max_level, parent
from .sfc import cached_keys, get_curve
from .treesort import block_ends, remove_duplicates, tree_sort

__all__ = [
    "AdaptMap",
    "refine_leaves",
    "coarsen_leaves",
    "leaf_correspondence",
    "construct_from_points",
]


@dataclass(frozen=True)
class AdaptMap:
    """Old ↔ new leaf correspondence across a refine/coarsen step.

    Stored as a CSR new→old map: new leaf ``i`` derives from old leaves
    ``src_idx[src_ptr[i]:src_ptr[i+1]]`` — exactly one entry when the
    leaf is unchanged or a refinement child, the full sibling group when
    it is a coarsening parent.  The map is total (every new leaf has at
    least one source) and the images are disjoint except for coarsening
    parents sharing their sibling sources.
    """

    n_old: int
    n_new: int
    src_ptr: np.ndarray
    src_idx: np.ndarray

    def sources(self, i: int) -> np.ndarray:
        """Old leaf indices that new leaf ``i`` derives from."""
        return self.src_idx[self.src_ptr[i] : self.src_ptr[i + 1]]

    def single_source(self) -> np.ndarray:
        """Per-new-leaf old index where unique, else -1 (coarsened)."""
        cnt = np.diff(self.src_ptr)
        out = np.full(self.n_new, -1, np.int64)
        one = cnt == 1
        out[one] = self.src_idx[self.src_ptr[:-1][one]]
        return out

    def old_to_new(self) -> tuple[np.ndarray, np.ndarray]:
        """Inverse CSR: per-old-leaf list of derived new leaves."""
        order = np.argsort(self.src_idx, kind="stable")
        cnt = np.bincount(self.src_idx, minlength=self.n_old)
        ptr = np.zeros(self.n_old + 1, np.int64)
        np.cumsum(cnt, out=ptr[1:])
        rows = np.repeat(
            np.arange(self.n_new, dtype=np.int64), np.diff(self.src_ptr)
        )
        return ptr, rows[order]

    def is_total(self) -> bool:
        """Every new leaf has at least one old source."""
        return bool((np.diff(self.src_ptr) >= 1).all())


def leaf_correspondence(
    old_leaves: OctantSet, new_leaves: OctantSet, curve: str = "morton"
) -> AdaptMap:
    """Match two SFC-sorted linear octrees of the same domain leaf-wise.

    Each new leaf is equal to, a descendant of, or an ancestor of the
    old leaves covering its SFC block, so its sources are either the
    single containing old leaf or the contiguous run of old descendants
    inside its block.  Works across any refine/coarsen/balance
    combination, including carved-child pruning.
    """
    dim = old_leaves.dim
    oracle = get_curve(curve)
    ok = cached_keys(old_leaves, oracle)
    oe = block_ends(ok, old_leaves.levels, dim)
    nk = cached_keys(new_leaves, oracle)
    ne = block_ends(nk, new_leaves.levels, dim)
    n_new = len(new_leaves)
    j = np.searchsorted(ok, nk, side="right") - 1
    jc = np.clip(j, 0, max(len(old_leaves) - 1, 0))
    contained = (j >= 0) & (nk >= ok[jc]) & (ne <= oe[jc])
    lo = np.searchsorted(ok, nk, side="left")
    hi = np.searchsorted(ok, ne, side="left")
    cnt = np.where(contained, 1, hi - lo)
    ptr = np.zeros(n_new + 1, np.int64)
    np.cumsum(cnt, out=ptr[1:])
    idx = np.empty(int(ptr[-1]), np.int64)
    ci = np.flatnonzero(contained)
    idx[ptr[:-1][ci]] = jc[ci]
    di = np.flatnonzero(~contained)
    if len(di):
        total = int((hi[di] - lo[di]).sum())
        rep = np.repeat(lo[di], hi[di] - lo[di])
        offs = np.arange(total, dtype=np.int64) - np.repeat(
            np.concatenate([[0], np.cumsum(hi[di] - lo[di])[:-1]]).astype(
                np.int64
            ),
            hi[di] - lo[di],
        )
        dest = np.repeat(ptr[:-1][di], hi[di] - lo[di]) + offs
        idx[dest] = rep + offs
    amap = AdaptMap(
        n_old=len(old_leaves), n_new=n_new, src_ptr=ptr, src_idx=idx
    )
    if not amap.is_total():
        raise RuntimeError(
            "leaf correspondence is not total — are both octrees "
            "linearizations of the same domain?"
        )
    return amap


def refine_leaves(
    domain: Domain,
    leaves: OctantSet,
    marks: np.ndarray,
    curve: str = "morton",
) -> OctantSet:
    """Split marked leaves; carved children are pruned immediately."""
    marks = np.asarray(marks, bool)
    if len(marks) != len(leaves):
        raise ValueError("one mark per leaf required")
    m = max_level(leaves.dim)
    splittable = marks & (leaves.levels < m)
    keep = leaves[np.flatnonzero(~splittable)]
    kids = children(leaves[np.flatnonzero(splittable)])
    if len(kids):
        lab = domain.classify_octants(kids)
        kids = kids[np.flatnonzero(lab != RegionLabel.CARVED)]
    out = OctantSet.concatenate([keep, kids]) if len(kids) else keep
    return tree_sort(out, curve)[0]


def coarsen_leaves(
    domain: Domain,
    leaves: OctantSet,
    marks: np.ndarray,
    min_level: int = 0,
    curve: str = "morton",
) -> OctantSet:
    """Merge sibling groups into parents where permitted.

    A parent replaces its children when (a) every *retained* child is a
    marked leaf of the group — children missing because they were
    carved do not block the merge — (b) the parent is itself not
    carved, and (c) the parent level is >= ``min_level``.
    """
    marks = np.asarray(marks, bool)
    if len(marks) != len(leaves):
        raise ValueError("one mark per leaf required")
    dim = leaves.dim
    oracle = get_curve(curve)
    cand = np.flatnonzero(marks & (leaves.levels > min_level))
    if len(cand) == 0:
        return tree_sort(leaves, curve)[0]
    pars = parent(leaves[cand])
    pkeys = oracle.keys(pars)
    plev = pars.levels
    # group candidate children by (parent key, parent level)
    order = np.lexsort((plev, pkeys))
    pk, pl = pkeys[order], plev[order]
    new = np.ones(len(order), bool)
    new[1:] = (pk[1:] != pk[:-1]) | (pl[1:] != pl[:-1])
    gid = np.cumsum(new) - 1
    # count retained children of each parent among ALL leaves (not just
    # marked): a parent group is mergeable only if every retained child
    # in the mesh is a marked candidate
    all_pars = parent(leaves)
    apk = oracle.keys(all_pars)
    apl = all_pars.levels
    merge_parents = []
    drop = np.zeros(len(leaves), bool)
    reps = order[new]  # representative candidate per group
    for g, rep in enumerate(reps):
        members = cand[order[gid == g]]
        key, lev = pkeys[rep], plev[rep]
        in_mesh = np.flatnonzero(
            (apk == key) & (apl == lev) & (leaves.levels == leaves.levels[cand[order[gid == g]][0]])
        )
        # all same-level retained siblings must be marked candidates
        if not np.isin(in_mesh, members).all() or len(in_mesh) != len(members):
            continue
        pgroup = pars[int(np.flatnonzero(cand == members[0])[0])]
        lab = domain.classify_octants(pgroup)[0]
        if lab == RegionLabel.CARVED:
            continue
        merge_parents.append(pgroup)
        drop[members] = True
    keep = leaves[np.flatnonzero(~drop)]
    if merge_parents:
        merged = OctantSet.concatenate([keep] + merge_parents)
    else:
        merged = keep
    merged = remove_duplicates(merged, oracle)
    return tree_sort(merged, curve)[0]


def construct_from_points(
    domain: Domain,
    points: np.ndarray,
    max_points: int,
    max_depth: int | None = None,
    curve: str = "morton",
) -> OctantSet:
    """Point-cloud-driven construction (§3.2's third criterion).

    Retained leaves split while they contain more than ``max_points``
    of the cloud (points in carved regions never force refinement —
    they are discarded with their octants).
    """
    pts = np.asarray(points, float)
    dim = domain.dim
    m = max_level(dim)
    cap = max_depth if max_depth is not None else m
    if max_points < 1:
        raise ValueError("max_points must be >= 1")
    oracle = get_curve(curve)
    # integer cell coords of each point at the finest level
    ipts = np.clip(
        (pts / domain.scale * (1 << m)).astype(np.int64), 0, (1 << m) - 1
    ).astype(np.uint32)
    pkeys = np.sort(oracle.keys_from_coords(ipts, dim))

    from .treesort import block_ends

    frontier = OctantSet.root(dim)
    out = []
    while len(frontier):
        lab = domain.classify_octants(frontier)
        retained = np.flatnonzero(lab != RegionLabel.CARVED)
        frontier = frontier[retained]
        if not len(frontier):
            break
        keys = oracle.keys(frontier)
        ends = block_ends(keys, frontier.levels, dim)
        counts = np.searchsorted(pkeys, ends) - np.searchsorted(pkeys, keys)
        split = (counts > max_points) & (frontier.levels < min(cap, m))
        out.append(frontier[np.flatnonzero(~split)])
        frontier = children(frontier[np.flatnonzero(split)])
    leaves = OctantSet.concatenate(out)
    return tree_sort(leaves, curve)[0]
