"""On-the-fly refinement and coarsening of incomplete octrees.

The paper advertises "on-the-fly refinement and coarsening that matches
the arbitrary function within the refinement tolerance" and lists the
point-cloud criterion ("containing more than a maximal number of points
from an initial point cloud") among the §3.2 refinement drivers.  This
module supplies both directions:

* :func:`refine_leaves` — split marked leaves into their children
  (pruning any carved child);
* :func:`coarsen_leaves` — replace complete sibling groups whose
  members are all marked (and whose parent is not carved) by their
  parent; carved siblings count as implicitly present, so carving never
  blocks coarsening at the boundary;
* :func:`construct_from_points` — Algorithm-1-style construction where
  a leaf splits while it holds more than ``max_points`` cloud points.

All three return SFC-sorted linear octrees; callers re-balance with
:func:`repro.core.balance.balance_2to1` before building nodes.
"""

from __future__ import annotations

import numpy as np

from ..geometry.predicate import RegionLabel
from .domain import Domain
from .octant import OctantSet, children, max_level, parent
from .sfc import get_curve
from .treesort import remove_duplicates, tree_sort

__all__ = ["refine_leaves", "coarsen_leaves", "construct_from_points"]


def refine_leaves(
    domain: Domain,
    leaves: OctantSet,
    marks: np.ndarray,
    curve: str = "morton",
) -> OctantSet:
    """Split marked leaves; carved children are pruned immediately."""
    marks = np.asarray(marks, bool)
    if len(marks) != len(leaves):
        raise ValueError("one mark per leaf required")
    m = max_level(leaves.dim)
    splittable = marks & (leaves.levels < m)
    keep = leaves[np.flatnonzero(~splittable)]
    kids = children(leaves[np.flatnonzero(splittable)])
    if len(kids):
        lab = domain.classify_octants(kids)
        kids = kids[np.flatnonzero(lab != RegionLabel.CARVED)]
    out = OctantSet.concatenate([keep, kids]) if len(kids) else keep
    return tree_sort(out, curve)[0]


def coarsen_leaves(
    domain: Domain,
    leaves: OctantSet,
    marks: np.ndarray,
    min_level: int = 0,
    curve: str = "morton",
) -> OctantSet:
    """Merge sibling groups into parents where permitted.

    A parent replaces its children when (a) every *retained* child is a
    marked leaf of the group — children missing because they were
    carved do not block the merge — (b) the parent is itself not
    carved, and (c) the parent level is >= ``min_level``.
    """
    marks = np.asarray(marks, bool)
    if len(marks) != len(leaves):
        raise ValueError("one mark per leaf required")
    dim = leaves.dim
    oracle = get_curve(curve)
    cand = np.flatnonzero(marks & (leaves.levels > min_level))
    if len(cand) == 0:
        return tree_sort(leaves, curve)[0]
    pars = parent(leaves[cand])
    pkeys = oracle.keys(pars)
    plev = pars.levels
    # group candidate children by (parent key, parent level)
    order = np.lexsort((plev, pkeys))
    pk, pl = pkeys[order], plev[order]
    new = np.ones(len(order), bool)
    new[1:] = (pk[1:] != pk[:-1]) | (pl[1:] != pl[:-1])
    gid = np.cumsum(new) - 1
    # count retained children of each parent among ALL leaves (not just
    # marked): a parent group is mergeable only if every retained child
    # in the mesh is a marked candidate
    all_pars = parent(leaves)
    apk = oracle.keys(all_pars)
    apl = all_pars.levels
    merge_parents = []
    drop = np.zeros(len(leaves), bool)
    reps = order[new]  # representative candidate per group
    for g, rep in enumerate(reps):
        members = cand[order[gid == g]]
        key, lev = pkeys[rep], plev[rep]
        in_mesh = np.flatnonzero(
            (apk == key) & (apl == lev) & (leaves.levels == leaves.levels[cand[order[gid == g]][0]])
        )
        # all same-level retained siblings must be marked candidates
        if not np.isin(in_mesh, members).all() or len(in_mesh) != len(members):
            continue
        pgroup = pars[int(np.flatnonzero(cand == members[0])[0])]
        lab = domain.classify_octants(pgroup)[0]
        if lab == RegionLabel.CARVED:
            continue
        merge_parents.append(pgroup)
        drop[members] = True
    keep = leaves[np.flatnonzero(~drop)]
    if merge_parents:
        merged = OctantSet.concatenate([keep] + merge_parents)
    else:
        merged = keep
    merged = remove_duplicates(merged, oracle)
    return tree_sort(merged, curve)[0]


def construct_from_points(
    domain: Domain,
    points: np.ndarray,
    max_points: int,
    max_depth: int | None = None,
    curve: str = "morton",
) -> OctantSet:
    """Point-cloud-driven construction (§3.2's third criterion).

    Retained leaves split while they contain more than ``max_points``
    of the cloud (points in carved regions never force refinement —
    they are discarded with their octants).
    """
    pts = np.asarray(points, float)
    dim = domain.dim
    m = max_level(dim)
    cap = max_depth if max_depth is not None else m
    if max_points < 1:
        raise ValueError("max_points must be >= 1")
    oracle = get_curve(curve)
    # integer cell coords of each point at the finest level
    ipts = np.clip(
        (pts / domain.scale * (1 << m)).astype(np.int64), 0, (1 << m) - 1
    ).astype(np.uint32)
    pkeys = np.sort(oracle.keys_from_coords(ipts, dim))

    from .treesort import block_ends

    frontier = OctantSet.root(dim)
    out = []
    while len(frontier):
        lab = domain.classify_octants(frontier)
        retained = np.flatnonzero(lab != RegionLabel.CARVED)
        frontier = frontier[retained]
        if not len(frontier):
            break
        keys = oracle.keys(frontier)
        ends = block_ends(keys, frontier.levels, dim)
        counts = np.searchsorted(pkeys, ends) - np.searchsorted(pkeys, keys)
        split = (counts > max_points) & (frontier.levels < min(cap, m))
        out.append(frontier[np.flatnonzero(~split)])
        frontier = children(frontier[np.flatnonzero(split)])
    leaves = OctantSet.concatenate(out)
    return tree_sort(leaves, curve)[0]
