"""Core incomplete-octree algorithms (the paper's primary contribution)."""

from .adapt import AdaptMap, coarsen_leaves, leaf_correspondence, refine_leaves
from .balance import balance_2to1, is_balanced
from .construct import construct_adaptive, construct_constrained, construct_uniform
from .distributed import dist_tree_sort, distributed_construct_constrained
from .domain import Domain
from .faces import extract_boundary_faces
from .mesh import IncompleteMesh, build_mesh, build_uniform_mesh
from .nodes import MeshNodes, build_nodes
from .octant import OctantSet, max_level
from .plan import (
    OperatorContext,
    PlanDelta,
    TraversalPlan,
    diff_leaves,
    mesh_fingerprint,
    operator_context,
)
from .plan_delta import PlanUpdateReport, assert_plan_equivalent, update_mesh
from .sfc import HilbertOrder, MortonOrder, get_curve
from .treesort import linearize, tree_sort

__all__ = [
    "OctantSet",
    "max_level",
    "MortonOrder",
    "HilbertOrder",
    "get_curve",
    "tree_sort",
    "linearize",
    "construct_uniform",
    "construct_constrained",
    "construct_adaptive",
    "balance_2to1",
    "is_balanced",
    "Domain",
    "build_nodes",
    "MeshNodes",
    "IncompleteMesh",
    "build_mesh",
    "build_uniform_mesh",
    "extract_boundary_faces",
    "OperatorContext",
    "TraversalPlan",
    "operator_context",
    "mesh_fingerprint",
    "PlanDelta",
    "diff_leaves",
    "PlanUpdateReport",
    "update_mesh",
    "assert_plan_equivalent",
    "AdaptMap",
    "refine_leaves",
    "coarsen_leaves",
    "leaf_correspondence",
    "dist_tree_sort",
    "distributed_construct_constrained",
]
