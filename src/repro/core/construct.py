"""Incomplete-octree construction (Algorithms 1 and 2 of the paper).

Construction proceeds top-down from the root; a subtree is pruned the
moment F classifies it as carved ("proactive pruning" — the paper's key
difference from build-complete-then-filter pipelines).  The production
implementation advances a whole frontier of octants per level with
vectorised classification; a faithful per-octant recursive version of
Algorithm 2 is kept as a cross-checked reference.

Refinement criteria supported (matching the paper's §3.2 list):

* a uniform target level (Algorithm 1, :func:`construct_uniform`);
* a set of seed octants — output no coarser than the seeds
  (Algorithm 2, :func:`construct_constrained`);
* interception of the subdomain boundary plus per-region levels
  (:func:`construct_adaptive` — the "base level + boundary level"
  meshes used throughout the evaluation).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..geometry.predicate import RegionLabel
from ..obs import span
from .domain import Domain
from .octant import OctantSet, children, max_level
from .sfc import SFCOracle, get_curve
from .treesort import tree_sort

__all__ = [
    "construct_uniform",
    "construct_constrained",
    "construct_adaptive",
    "construct_constrained_recursive",
]


def _construct_frontier(
    domain: Domain,
    split_rule: Callable[[OctantSet, np.ndarray], np.ndarray],
    curve: "str | SFCOracle" = "morton",
    keep_labels: bool = False,
):
    """Shared BFS driver: classify, prune carved, split per rule.

    ``split_rule(frontier, labels) -> bool mask`` decides which retained
    octants are refined; the rest become leaves.
    """
    dim = domain.dim
    m = max_level(dim)
    frontier = OctantSet.root(dim)
    leaf_parts: list[OctantSet] = []
    label_parts: list[np.ndarray] = []
    with span("construct") as sp:
        while len(frontier):
            sp.add("classified", len(frontier))
            labels = domain.classify_octants(frontier)
            retained = labels != RegionLabel.CARVED
            sp.add("pruned", int(len(frontier) - retained.sum()))
            frontier = frontier[np.flatnonzero(retained)]
            labels = labels[retained]
            if not len(frontier):
                break
            split = split_rule(frontier, labels)
            split &= frontier.levels < m  # hard cap at max depth
            keep = np.flatnonzero(~split)
            leaf_parts.append(frontier[keep])
            if keep_labels:
                label_parts.append(labels[keep])
            frontier = children(frontier[np.flatnonzero(split)])
        leaves = (
            OctantSet.concatenate(leaf_parts) if leaf_parts else OctantSet.empty(dim)
        )
        leaves, order = tree_sort(leaves, curve)
        sp.add("leaves", len(leaves))
    if keep_labels:
        lab = (
            np.concatenate(label_parts) if label_parts else np.zeros(0, np.uint8)
        )
        return leaves, lab[order]
    return leaves


def construct_uniform(
    domain: Domain, level: int, curve: "str | SFCOracle" = "morton"
) -> OctantSet:
    """Algorithm 1: level-``level`` leaves covering the subdomain."""
    if not 0 <= level <= max_level(domain.dim):
        raise ValueError(f"level out of range: {level}")

    def rule(frontier, labels):
        return frontier.levels < level

    return _construct_frontier(domain, rule, curve)


def construct_constrained(
    domain: Domain, seeds: OctantSet, curve: "str | SFCOracle" = "morton"
) -> OctantSet:
    """Algorithm 2: leaves no coarser than ``seeds``, covering the subdomain.

    Every output leaf whose SFC block contains a seed is at least as fine
    as the finest such seed.
    """
    oracle = get_curve(curve)
    dim = domain.dim
    if seeds.dim != dim:
        raise ValueError("seed dimension mismatch")
    if len(seeds) == 0:
        return construct_uniform(domain, 0, curve)
    seeds_sorted, _ = tree_sort(seeds, oracle)
    skeys = oracle.keys(seeds_sorted)
    slevels = seeds_sorted.levels.astype(np.int64)

    def rule(frontier, labels):
        fkeys = oracle.keys(frontier)
        fends = fkeys + _block_span(frontier, dim)
        starts = np.searchsorted(skeys, fkeys, side="left")
        ends = np.searchsorted(skeys, fends, side="left")
        # max seed level within each frontier block (empty -> -1)
        finest = _segment_max(slevels, starts, ends, fill=-1)
        return frontier.levels.astype(np.int64) < finest

    return _construct_frontier(domain, rule, curve)


def construct_adaptive(
    domain: Domain,
    base_level: int,
    boundary_level: int,
    curve: "str | SFCOracle" = "morton",
    extra_refine: Callable[[OctantSet, np.ndarray], np.ndarray] | None = None,
    return_labels: bool = False,
):
    """Boundary-adapted construction: the evaluation's standard mesh.

    Retained octants refine to ``base_level`` everywhere and to
    ``boundary_level`` where they intercept the subdomain boundary.
    ``extra_refine(frontier, labels) -> desired level array`` can impose
    additional region-based refinement (e.g. the classroom's exit level).
    """
    if boundary_level < base_level:
        raise ValueError("boundary_level must be >= base_level")

    def rule(frontier, labels):
        target = np.full(len(frontier), base_level, np.int64)
        np.putmask(target, labels == RegionLabel.RETAIN_BOUNDARY, boundary_level)
        if extra_refine is not None:
            target = np.maximum(target, extra_refine(frontier, labels))
        return frontier.levels.astype(np.int64) < target

    return _construct_frontier(domain, rule, curve, keep_labels=return_labels)


def construct_constrained_recursive(
    domain: Domain, seeds: OctantSet, curve: "str | SFCOracle" = "morton"
) -> OctantSet:
    """Faithful per-octant recursion of Algorithm 2 (reference only).

    Children are visited in regional SFC order via the oracle; seeds are
    bucketed to children with a counting pass exactly as in the paper.
    Used in tests to cross-check the vectorised frontier driver.
    """
    oracle = get_curve(curve)
    dim = domain.dim
    m = max_level(dim)
    nch = 1 << dim
    seeds_sorted, _ = tree_sort(seeds, oracle)
    out: list[OctantSet] = []

    def recurse(region: OctantSet, bucket: OctantSet) -> None:
        label = domain.classify_octants(region)[0]
        if label == RegionLabel.CARVED:
            return  # prune
        lvl = int(region.levels[0])
        finest = int(bucket.levels.max()) if len(bucket) else -1
        if len(bucket) == 0 or lvl >= finest or lvl >= m:
            out.append(region)
            return
        kids = children(region)
        kid_keys = oracle.keys(kids)
        sfc_order = np.argsort(kid_keys)  # regional SFC ordering of children
        # bucket seeds to children by key range
        bkeys = oracle.keys(bucket)
        for c in sfc_order:
            kid = kids[int(c)]
            k0 = oracle.keys(kid)[0]
            k1 = k0 + _block_span(kid, dim)[0]
            sel = np.flatnonzero((bkeys >= k0) & (bkeys < k1))
            recurse(kid, bucket[sel])

    recurse(OctantSet.root(dim), seeds_sorted)
    merged = OctantSet.concatenate(out) if out else OctantSet.empty(dim)
    merged, _ = tree_sort(merged, oracle)
    return merged


def _block_span(oset: OctantSet, dim: int) -> np.ndarray:
    m = max_level(dim)
    return np.uint64(1) << (
        np.uint64(dim) * (np.uint64(m) - oset.levels.astype(np.uint64))
    )


def _segment_max(
    values: np.ndarray, starts: np.ndarray, ends: np.ndarray, fill: int
) -> np.ndarray:
    """Max of ``values[starts[i]:ends[i]]`` per segment; ``fill`` if empty.

    ``values`` are small non-negative integers (tree levels), so the max
    is found by per-level prefix counts — fully vectorised and immune to
    the ordering pitfalls of ``np.maximum.reduceat``.
    """
    out = np.full(len(starts), fill, np.int64)
    if len(values) == 0 or len(starts) == 0:
        return out
    unset = np.ones(len(starts), bool)
    for lv in range(int(values.max()), -1, -1):
        csum = np.concatenate([[0], np.cumsum(values >= lv)])
        hit = unset & (csum[ends] > csum[starts])
        out[hit] = lv
        unset &= ~hit
        if not unset.any():
            break
    return out
