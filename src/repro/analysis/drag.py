"""Drag-coefficient references and extraction (Fig. 13 / Fig. 14).

The paper validates its Navier–Stokes solver by reproducing the sphere
*drag crisis* — the sudden C_d drop near Re ≈ 3×10⁵ — against
Achenbach's experiments and Geier et al.'s LBM simulations.  Running
LES at those Reynolds numbers is outside a pure-Python reproduction
(see DESIGN.md); this module provides

* the Morrison (2013) analytic C_d(Re) correlation, which tracks the
  experimental curve through the crisis and is the continuous reference
  our Fig-13 bench plots;
* digitised experimental anchor points (Achenbach 1972; Bakić 2003 and
  Geier 2017 levels quoted in the paper's text);
* reference values for the laminar regimes where our VMS solver *is*
  run (2-D cylinder and low-Re sphere), and
* surface-stress drag extraction on the voxelated boundary faces.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "morrison_cd",
    "ACHENBACH_ANCHORS",
    "CYLINDER_CD_REFERENCE",
    "SPHERE_LOW_RE_CD",
    "schiller_naumann_cd",
    "drag_from_faces",
]


def morrison_cd(Re) -> np.ndarray:
    """Morrison (2013) sphere drag correlation, valid to Re ≈ 10⁶.

    Captures Stokes drag, the Newton plateau and the drag crisis.
    """
    Re = np.asarray(Re, float)
    t1 = 24.0 / Re
    t2 = 2.6 * (Re / 5.0) / (1.0 + (Re / 5.0) ** 1.52)
    t3 = 0.411 * (Re / 2.63e5) ** -7.94 / (1.0 + (Re / 2.63e5) ** -8.00)
    t4 = 0.25 * (Re / 1.0e6) / (1.0 + Re / 1.0e6)
    return t1 + t2 + t3 + t4


def schiller_naumann_cd(Re) -> np.ndarray:
    """Schiller–Naumann sphere drag (Re < 800): low-Re validation."""
    Re = np.asarray(Re, float)
    return 24.0 / Re * (1.0 + 0.15 * Re**0.687)


#: (Re, C_d) anchors across the crisis: Achenbach (1972) trend, with the
#: pre-crisis level 0.5 and the Geier-et-al. post-crisis level ~0.2 the
#: paper quotes.  Digitised approximately from the published curves.
ACHENBACH_ANCHORS = np.array(
    [
        (1.6e4, 0.47),
        (5.0e4, 0.49),
        (1.0e5, 0.50),
        (2.0e5, 0.47),
        (3.0e5, 0.30),
        (4.0e5, 0.09),
        (6.0e5, 0.10),
        (1.0e6, 0.13),
        (2.0e6, 0.19),
    ]
)

#: steady/mean 2-D circular-cylinder drag references (standard benchmarks)
CYLINDER_CD_REFERENCE = {20: 2.05, 40: 1.54, 100: 1.35}

#: low-Re sphere C_d (Schiller–Naumann evaluations used as targets)
SPHERE_LOW_RE_CD = {50: 1.54, 100: 1.09, 200: 0.81}


def drag_from_faces(
    mesh,
    faces,
    vel_nodes: np.ndarray,
    p_nodes: np.ndarray,
    nu: float,
    flow_axis: int = 0,
    nquad: int | None = None,
) -> float:
    """Integrate the fluid traction over surrogate-boundary faces.

    F_i = ∮ (−p δ_ij + ν (∂_j u_i + ∂_i u_j)) n_j dA with unit density;
    returns the force component along ``flow_axis``.  ``vel_nodes`` is
    ``(n_nodes, dim)``; normals point out of the fluid (into the body),
    so the force on the body is the negative of the outward-flux
    integral computed with mesh-outward normals — handled here.
    """
    from ..fem.basis import LagrangeBasis
    from ..fem.sbm import face_quadrature

    dim = mesh.dim
    p = mesh.p
    basis = LagrangeBasis(p, dim)
    h_all = mesh.element_sizes()
    lo_all, _ = mesh.leaves.physical_bounds(mesh.domain.scale)
    g = mesh.nodes.gather
    npe = mesh.npe
    # gather each velocity component and the pressure to local vectors
    vloc = np.stack(
        [(g @ vel_nodes[:, k]).reshape(mesh.n_elem, npe) for k in range(dim)],
        axis=2,
    )  # (n_elem, npe, dim)
    ploc = (g @ p_nodes).reshape(mesh.n_elem, npe)

    force = 0.0
    nq1 = nquad or p + 1
    for axis in range(dim):
        for side in (0, 1):
            sel = np.flatnonzero((faces.axis == axis) & (faces.side == side))
            if len(sel) == 0:
                continue
            es = faces.elem[sel]
            rpts, rwts = face_quadrature(p, dim, axis, side, nq1)
            N = basis.eval(rpts)
            G = basis.eval_grad(rpts)
            h = h_all[es]
            nrm = np.zeros(dim)
            nrm[axis] = 2.0 * side - 1.0  # outward from the fluid
            wq = rwts[None, :] * (h ** (dim - 1))[:, None]
            p_q = np.einsum("qi,fi->fq", N, ploc[es])
            # velocity gradient at face points: (f, q, i=comp, j=deriv)
            gradu = np.einsum("qij,fik->fqkj", G, vloc[es]) / h[:, None, None, None]
            sym = gradu + np.swapaxes(gradu, 2, 3)
            traction = -p_q[:, :, None] * nrm[None, None, :] + nu * np.einsum(
                "fqij,j->fqi", sym, nrm
            )
            # traction on the fluid across this face; the force on the
            # body is the reaction: accumulate the negative
            force -= float(np.einsum("fq,fq->", wq, traction[:, :, flow_axis]))
    return force
