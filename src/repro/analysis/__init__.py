"""Evaluation analysis: convergence rates, drag references, roofline."""

from .convergence import fit_rate, observed_rates
from .drag import (
    ACHENBACH_ANCHORS,
    CYLINDER_CD_REFERENCE,
    drag_from_faces,
    morrison_cd,
    schiller_naumann_cd,
)
from .roofline import (
    MeasuredKernel,
    RooflinePoint,
    analyze_kernel,
    measured_kernel_points,
    roofline_ceilings,
)

__all__ = [
    "observed_rates",
    "fit_rate",
    "morrison_cd",
    "schiller_naumann_cd",
    "ACHENBACH_ANCHORS",
    "CYLINDER_CD_REFERENCE",
    "drag_from_faces",
    "MeasuredKernel",
    "RooflinePoint",
    "analyze_kernel",
    "measured_kernel_points",
    "roofline_ceilings",
]
