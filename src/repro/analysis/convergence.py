"""Convergence-rate utilities for the §4.1/§4.3 studies."""

from __future__ import annotations

import numpy as np

__all__ = ["observed_rates", "fit_rate"]


def observed_rates(h: np.ndarray, err: np.ndarray) -> np.ndarray:
    """Pairwise observed order: log(e_i/e_{i+1}) / log(h_i/h_{i+1})."""
    h = np.asarray(h, float)
    err = np.asarray(err, float)
    if len(h) != len(err) or len(h) < 2:
        raise ValueError("need matching arrays of length >= 2")
    return np.log(err[:-1] / err[1:]) / np.log(h[:-1] / h[1:])


def fit_rate(h: np.ndarray, err: np.ndarray) -> float:
    """Least-squares slope of log(err) vs log(h)."""
    h = np.asarray(h, float)
    err = np.asarray(err, float)
    A = np.vstack([np.log(h), np.ones_like(h)]).T
    slope, _ = np.linalg.lstsq(A, np.log(err), rcond=None)[0]
    return float(slope)
