"""Roofline analysis of the elemental MATVEC kernels (Fig. 12).

The paper generates its roofline with Intel Advisor on Frontera and
reports arithmetic intensities of ≈0.072 (linear) and ≈0.121
(quadratic) with achieved rates of ≈4 and ≈7 GFLOP/s at ≈60 GB/s.
Here the same quantities come from explicit counting:

* FLOPs — the tensorised elemental-apply complexity O(d (p+1)^(d+1))
  per element (the algorithm the paper implements) and, separately, the
  dense-kernel count our numpy implementation actually performs;
* bytes — the full per-element traversal traffic: local input/output
  vectors, their duplicated top-down/bottom-up copies, and coordinate /
  scale metadata;
* achieved FLOP/s — measured by timing our batched kernel.

AI grows with p because data grows as O((p+1)^d) while compute grows as
O(d (p+1)^(d+1)) — the paper's explanation, reproduced quantitatively.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

import numpy as np

from ..core.matvec import MapBasedMatVec
from ..core.mesh import IncompleteMesh
from ..parallel.perfmodel import FRONTERA, MachineModel

__all__ = [
    "MeasuredKernel",
    "RooflinePoint",
    "analyze_kernel",
    "measured_kernel_points",
    "roofline_ceilings",
]


@dataclass
class RooflinePoint:
    """One kernel's position on the roofline."""

    label: str
    p: int
    arithmetic_intensity: float   # FLOP / byte (tensorised model)
    dense_ai: float               # FLOP / byte of our numpy kernel
    measured_gflops: float        # our achieved rate
    model_gflops: float           # paper-calibrated machine-model rate
    bandwidth_bound_gflops: float  # AI × model bandwidth ceiling


def _model_bytes_per_element(
    p: int, dim: int, dup: float = 1.35, levels: float = 8.0
) -> float:
    """Bytes moved per element by one traversal MATVEC.

    The top-down/bottom-up passes copy every elemental node value once
    per tree level on the path from the root (``levels`` ≈ the mean
    leaf depth), duplicated across sibling buckets by ``dup``; the leaf
    apply reads/writes the local vectors once more and touches the
    elemental scale + octant metadata (~4 doubles).
    """
    npe = (p + 1) ** dim
    return 8.0 * (2 * npe * dup * levels + npe + 4)


def tensorised_apply_flops(p: int, dim: int) -> float:
    """FLOPs of the sum-factorised elemental apply: O(d (p+1)^(d+1)).

    This is the algorithmic FLOP count the paper's AI figures use (the
    *time* model in perfmodel uses a larger calibrated count that also
    covers elemental-operator formation)."""
    return 2.0 * dim * (p + 1) ** (dim + 1)


def analyze_kernel(
    mesh: IncompleteMesh,
    machine: MachineModel = FRONTERA,
    repeats: int = 5,
    backend: str | None = None,
) -> RooflinePoint:
    """Place the mesh's Poisson elemental kernel on the roofline.

    ``backend`` selects the :mod:`repro.kernels` backend the timed
    applies execute under (None = the session default).
    """
    from ..kernels import use_backend

    p, dim = mesh.p, mesh.dim
    mv = MapBasedMatVec(mesh)
    u = np.linspace(0.0, 1.0, mesh.n_nodes)
    with use_backend(backend):
        mv(u)  # warm up
        t0 = time.perf_counter()
        for _ in range(repeats):
            mv(u)
        dt = (time.perf_counter() - t0) / repeats
    dense_flops = mv.flops()
    tens_flops = tensorised_apply_flops(p, dim) * mesh.n_elem
    depth = float(mesh.leaves.levels.mean())
    bytes_model = _model_bytes_per_element(p, dim, levels=depth) * mesh.n_elem
    ai = tens_flops / bytes_model
    dense_ai = dense_flops / bytes_model
    return RooflinePoint(
        label=f"poisson-p{p}-{dim}d",
        p=p,
        arithmetic_intensity=float(ai),
        dense_ai=float(dense_ai),
        measured_gflops=dense_flops / dt,
        model_gflops=machine.kernel_rate(p),
        bandwidth_bound_gflops=float(ai * machine.mem_bw),
    )


def roofline_ceilings(
    machine: MachineModel = FRONTERA, peak_gflops: float = 86.4e9
) -> dict:
    """The two roofline ceilings: memory slope and compute peak.

    ``peak_gflops`` defaults to one Cascade-Lake core's DP peak
    (2.7 GHz × 2 FMA × 16 DP lanes).
    """
    return {
        "memory_bw": machine.mem_bw,
        "peak_flops": peak_gflops,
        "ridge_ai": peak_gflops / machine.mem_bw,
    }


@dataclass
class MeasuredKernel:
    """One kernel × backend cell measured by the :mod:`repro.kernels`
    facade counters — the *achieved* side of predicted-vs-achieved."""

    kernel: str
    backend: str
    calls: int
    flops: float
    bytes: float
    seconds: float
    arithmetic_intensity: float    # flops / bytes (measured)
    achieved_gflops: float         # flops / seconds
    roofline_gflops: float         # min(peak, AI × mem_bw)
    fraction_of_peak: float        # achieved / roofline ceiling

    def to_doc(self) -> dict:
        from dataclasses import asdict

        return asdict(self)


def _parse_counter_key(key: str) -> tuple[str, dict]:
    """Split a rendered counter key ``name{k="v",...}`` into its base
    name and label dict (the inverse of the registry's ``_render``)."""
    if "{" not in key:
        return key, {}
    base, _, rest = key.partition("{")
    labels = {}
    for part in rest.rstrip("}").split(","):
        if "=" not in part:
            continue
        k, _, v = part.partition("=")
        labels[k.strip()] = v.strip().strip('"')
    return base, labels


def _counters_of(source) -> dict:
    """Flat counter dict from a live registry (None), an obs summary /
    run artifact document, or a JSON artifact path."""
    if source is None:
        from ..obs.counters import REGISTRY

        return dict(REGISTRY.snapshot().get("counters", {}))
    if isinstance(source, str):
        with open(source) as fh:
            source = json.load(fh)
    if isinstance(source, dict):
        metrics = source.get("metrics", source)
        return dict(metrics.get("counters", metrics))
    raise TypeError(f"cannot read kernel counters from {type(source)!r}")


def measured_kernel_points(
    source=None,
    machine: MachineModel = FRONTERA,
    peak_flops: float = 86.4e9,
) -> list[MeasuredKernel]:
    """Achieved roofline points from the kernel-facade counters.

    ``source`` may be None (the live metrics registry), an obs
    ``summary()`` / run-artifact document, or a path to a written
    artifact.  Every ``kernels.*{backend=,kernel=}`` counter family is
    grouped into one :class:`MeasuredKernel` per (kernel, backend) with
    measured AI, achieved GFLOP/s, the roofline ceiling at that AI, and
    the achieved fraction of that ceiling."""
    counters = _counters_of(source)
    cells: dict[tuple[str, str], dict] = {}
    for key, val in counters.items():
        base, labels = _parse_counter_key(key)
        if not base.startswith("kernels."):
            continue
        field = base.split(".", 1)[1]
        if field not in ("calls", "flops", "bytes", "seconds"):
            continue
        kb = (labels.get("kernel", "?"), labels.get("backend", "?"))
        cells.setdefault(kb, {})[field] = float(val)
    out = []
    for (kernel, backend), c in sorted(cells.items()):
        flops = c.get("flops", 0.0)
        nbytes = c.get("bytes", 0.0)
        secs = c.get("seconds", 0.0)
        ai = flops / nbytes if nbytes > 0 else 0.0
        achieved = flops / secs if secs > 0 else 0.0
        ceiling = min(peak_flops, ai * machine.mem_bw) if ai > 0 else peak_flops
        out.append(
            MeasuredKernel(
                kernel=kernel,
                backend=backend,
                calls=int(c.get("calls", 0)),
                flops=flops,
                bytes=nbytes,
                seconds=secs,
                arithmetic_intensity=ai,
                achieved_gflops=achieved,
                roofline_gflops=ceiling,
                fraction_of_peak=achieved / ceiling if ceiling > 0 else 0.0,
            )
        )
    return out
