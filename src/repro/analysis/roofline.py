"""Roofline analysis of the elemental MATVEC kernels (Fig. 12).

The paper generates its roofline with Intel Advisor on Frontera and
reports arithmetic intensities of ≈0.072 (linear) and ≈0.121
(quadratic) with achieved rates of ≈4 and ≈7 GFLOP/s at ≈60 GB/s.
Here the same quantities come from explicit counting:

* FLOPs — the tensorised elemental-apply complexity O(d (p+1)^(d+1))
  per element (the algorithm the paper implements) and, separately, the
  dense-kernel count our numpy implementation actually performs;
* bytes — the full per-element traversal traffic: local input/output
  vectors, their duplicated top-down/bottom-up copies, and coordinate /
  scale metadata;
* achieved FLOP/s — measured by timing our batched kernel.

AI grows with p because data grows as O((p+1)^d) while compute grows as
O(d (p+1)^(d+1)) — the paper's explanation, reproduced quantitatively.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.matvec import MapBasedMatVec
from ..core.mesh import IncompleteMesh
from ..parallel.perfmodel import FRONTERA, MachineModel

__all__ = ["RooflinePoint", "analyze_kernel", "roofline_ceilings"]


@dataclass
class RooflinePoint:
    """One kernel's position on the roofline."""

    label: str
    p: int
    arithmetic_intensity: float   # FLOP / byte (tensorised model)
    dense_ai: float               # FLOP / byte of our numpy kernel
    measured_gflops: float        # our achieved rate
    model_gflops: float           # paper-calibrated machine-model rate
    bandwidth_bound_gflops: float  # AI × model bandwidth ceiling


def _model_bytes_per_element(
    p: int, dim: int, dup: float = 1.35, levels: float = 8.0
) -> float:
    """Bytes moved per element by one traversal MATVEC.

    The top-down/bottom-up passes copy every elemental node value once
    per tree level on the path from the root (``levels`` ≈ the mean
    leaf depth), duplicated across sibling buckets by ``dup``; the leaf
    apply reads/writes the local vectors once more and touches the
    elemental scale + octant metadata (~4 doubles).
    """
    npe = (p + 1) ** dim
    return 8.0 * (2 * npe * dup * levels + npe + 4)


def tensorised_apply_flops(p: int, dim: int) -> float:
    """FLOPs of the sum-factorised elemental apply: O(d (p+1)^(d+1)).

    This is the algorithmic FLOP count the paper's AI figures use (the
    *time* model in perfmodel uses a larger calibrated count that also
    covers elemental-operator formation)."""
    return 2.0 * dim * (p + 1) ** (dim + 1)


def analyze_kernel(
    mesh: IncompleteMesh,
    machine: MachineModel = FRONTERA,
    repeats: int = 5,
) -> RooflinePoint:
    """Place the mesh's Poisson elemental kernel on the roofline."""
    p, dim = mesh.p, mesh.dim
    mv = MapBasedMatVec(mesh)
    u = np.linspace(0.0, 1.0, mesh.n_nodes)
    mv(u)  # warm up
    t0 = time.perf_counter()
    for _ in range(repeats):
        mv(u)
    dt = (time.perf_counter() - t0) / repeats
    dense_flops = mv.flops()
    tens_flops = tensorised_apply_flops(p, dim) * mesh.n_elem
    depth = float(mesh.leaves.levels.mean())
    bytes_model = _model_bytes_per_element(p, dim, levels=depth) * mesh.n_elem
    ai = tens_flops / bytes_model
    dense_ai = dense_flops / bytes_model
    return RooflinePoint(
        label=f"poisson-p{p}-{dim}d",
        p=p,
        arithmetic_intensity=float(ai),
        dense_ai=float(dense_ai),
        measured_gflops=dense_flops / dt,
        model_gflops=machine.kernel_rate(p),
        bandwidth_bound_gflops=float(ai * machine.mem_bw),
    )


def roofline_ceilings(
    machine: MachineModel = FRONTERA, peak_gflops: float = 86.4e9
) -> dict:
    """The two roofline ceilings: memory slope and compute peak.

    ``peak_gflops`` defaults to one Cascade-Lake core's DP peak
    (2.7 GHz × 2 FMA × 16 DP lanes).
    """
    return {
        "memory_bw": machine.mem_bw,
        "peak_flops": peak_gflops,
        "ridge_ai": peak_gflops / machine.mem_bw,
    }
