"""Seeded, deterministic fleet-level fault schedules on the virtual clock.

The serve/fleet layers are discrete-event simulations: every timestamp
is an integer virtual tick and every decision is a pure function of
(config, workload, history).  That makes *chaos engineering* exact —
a :class:`ChaosSchedule` names precisely which shard slows down, stalls,
crashes, serves a corrupted artifact or mangles a cross-shard handoff,
and at which tick or operation index.  Replaying the same schedule
over the same workload reproduces the same run bit for bit, so the
invariants in :mod:`repro.chaos.invariants` (exactly-once completion,
unaffected-request identity, deterministic health snapshots) are
checkable equalities rather than statistical claims.

Fault vocabulary:

* :class:`Slowdown` — shard ``shard`` pays ``factor``× ticks for every
  unit of work whose execution starts in ``[t0, t1)`` (a degraded
  host).  Applied through :class:`ChaosClock`, the schedule-aware
  virtual clock the fleet installs on each shard.
* :class:`Stall` — shard ``shard`` executes nothing in ``[t0, t1)``
  (a GC pause / network partition); the fleet loop defers the shard's
  ready time to ``t1`` and jumps its clock over the window.
* :class:`Crash` — the shard's process state is discarded at ``tick``
  and checkpointed fail-over rebuilds it (the existing ``kill``
  machinery, now schedulable in multiples at arbitrary ticks).
* :class:`CacheCorruption` — one bit of a cached artifact's payload on
  ``shard`` flips just before that shard's ``at_lookup``-th L1 cache
  lookup (bit rot under the service's feet).
* :class:`HandoffFault` — the ``index``-th cross-shard steal handoff
  is ``"dup"``\\ licated (delivered *and* kept at the source — the
  exactly-once guard must dedup) or ``"drop"``\\ ped (lost in transit —
  the source retransmits after a timeout).

``random(seed, ...)`` draws a mixed schedule deterministically from a
seed; explicit builders compose scenarios by hand.  One-shot faults
(corruption, handoff) are consumed on firing and never re-fire.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..serve.scheduler import VirtualClock

__all__ = [
    "Slowdown",
    "Stall",
    "Crash",
    "CacheCorruption",
    "HandoffFault",
    "ChaosSchedule",
    "ChaosClock",
]


@dataclass(frozen=True)
class Slowdown:
    """Shard ``shard`` runs ``factor``× slower during ``[t0, t1)``."""

    shard: str
    t0: int
    t1: int
    factor: int = 10

    def describe(self) -> str:
        return (f"slowdown {self.shard} x{self.factor} "
                f"@ [{self.t0}, {self.t1})")


@dataclass(frozen=True)
class Stall:
    """Shard ``shard`` executes nothing during ``[t0, t1)``."""

    shard: str
    t0: int
    t1: int

    def describe(self) -> str:
        return f"stall {self.shard} @ [{self.t0}, {self.t1})"


@dataclass(frozen=True)
class Crash:
    """Shard ``shard`` loses its process state at ``tick``."""

    tick: int
    shard: str

    def describe(self) -> str:
        return f"crash {self.shard} @ {self.tick}"


@dataclass(frozen=True)
class CacheCorruption:
    """Flip one bit of a cached artifact before ``shard``'s
    ``at_lookup``-th L1 lookup (1-based)."""

    shard: str
    at_lookup: int

    def describe(self) -> str:
        return f"corrupt cache {self.shard} @ lookup {self.at_lookup}"


@dataclass(frozen=True)
class HandoffFault:
    """Duplicate or drop the ``index``-th cross-shard handoff (0-based
    over all executed steal migrations, fleet-wide)."""

    index: int
    mode: str  # "dup" | "drop"

    def describe(self) -> str:
        return f"{self.mode} handoff #{self.index}"


class ChaosSchedule:
    """A seeded, fully deterministic plan of fleet-level faults."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.slowdowns: list[Slowdown] = []
        self.stalls: list[Stall] = []
        self.crash_list: list[Crash] = []
        self.corruptions: list[CacheCorruption] = []
        self.handoff_faults: list[HandoffFault] = []
        self._consumed_corruptions: set[int] = set()
        self._consumed_handoffs: set[int] = set()

    # -- construction ---------------------------------------------------

    def slow(self, shard: str, t0: int, t1: int,
             factor: int = 10) -> "ChaosSchedule":
        if t1 <= t0 or factor < 1:
            raise ValueError("need t1 > t0 and factor >= 1")
        self.slowdowns.append(Slowdown(shard, int(t0), int(t1), int(factor)))
        return self

    def stall(self, shard: str, t0: int, t1: int) -> "ChaosSchedule":
        if t1 <= t0:
            raise ValueError("need t1 > t0")
        self.stalls.append(Stall(shard, int(t0), int(t1)))
        return self

    def crash(self, tick: int, shard: str) -> "ChaosSchedule":
        self.crash_list.append(Crash(int(tick), shard))
        return self

    def corrupt_cache(self, shard: str, at_lookup: int) -> "ChaosSchedule":
        if at_lookup < 1:
            raise ValueError("at_lookup is 1-based")
        self.corruptions.append(CacheCorruption(shard, int(at_lookup)))
        return self

    def handoff(self, index: int, mode: str) -> "ChaosSchedule":
        if mode not in ("dup", "drop"):
            raise ValueError("mode must be 'dup' or 'drop'")
        self.handoff_faults.append(HandoffFault(int(index), mode))
        return self

    @classmethod
    def random(cls, seed: int, shard_ids: list[str], horizon: int, *,
               n_slow: int = 1, n_stall: int = 1, n_crash: int = 0,
               n_corrupt: int = 1, n_handoff: int = 0,
               slow_factor: int = 10) -> "ChaosSchedule":
        """Draw a mixed schedule deterministically from ``seed``.

        The same (seed, shard_ids, horizon, counts) always yields the
        same schedule — the reproducibility contract of every chaos
        experiment.  Windows are drawn inside ``[0, horizon)``; crashes
        land in the back half of the horizon so checkpoints and logs
        have something to replay.
        """
        rng = np.random.default_rng(seed)
        sched = cls(seed=seed)
        ids = list(shard_ids)

        def pick_shard() -> str:
            return ids[int(rng.integers(0, len(ids)))]

        def window(max_len: int) -> tuple[int, int]:
            t0 = int(rng.integers(0, max(horizon - 1, 1)))
            length = int(rng.integers(max_len // 4 + 1, max_len + 1))
            return t0, t0 + length

        for _ in range(n_slow):
            t0, t1 = window(horizon // 2)
            sched.slow(pick_shard(), t0, t1, factor=slow_factor)
        for _ in range(n_stall):
            t0, t1 = window(horizon // 4)
            sched.stall(pick_shard(), t0, t1)
        for _ in range(n_crash):
            tick = int(rng.integers(horizon // 2, horizon))
            sched.crash(tick, pick_shard())
        for _ in range(n_corrupt):
            sched.corrupt_cache(pick_shard(), int(rng.integers(1, 9)))
        for _ in range(n_handoff):
            mode = ("dup", "drop")[int(rng.integers(0, 2))]
            sched.handoff(int(rng.integers(0, 6)), mode)
        return sched

    # -- runtime queries (used by the fleet loop) -----------------------

    def slow_factor(self, shard: str, now: int) -> int:
        """Combined slowdown factor for work starting at ``now``."""
        f = 1
        for s in self.slowdowns:
            if s.shard == shard and s.t0 <= now < s.t1:
                f = max(f, s.factor)
        return f

    def stall_until(self, shard: str, t: int) -> int:
        """Earliest tick at or after ``t`` at which ``shard`` may
        execute (``t`` itself when no stall window covers it)."""
        out = int(t)
        changed = True
        while changed:  # windows may chain
            changed = False
            for s in self.stalls:
                if s.shard == shard and s.t0 <= out < s.t1:
                    out = s.t1
                    changed = True
        return out

    def crashes(self) -> list[tuple[int, str]]:
        """All scheduled crashes as sorted ``(tick, shard)`` pairs."""
        return sorted((c.tick, c.shard) for c in self.crash_list)

    def cache_corruption_due(self, shard: str, lookup_no: int) -> bool:
        """One-shot: is a corruption scheduled for this shard's
        ``lookup_no``-th L1 lookup?  Consumed on firing."""
        for i, c in enumerate(self.corruptions):
            if (c.shard == shard and c.at_lookup == lookup_no
                    and i not in self._consumed_corruptions):
                self._consumed_corruptions.add(i)
                return True
        return False

    def handoff_mode(self, index: int) -> str | None:
        """One-shot: fault mode for the ``index``-th handoff, if any."""
        for i, f in enumerate(self.handoff_faults):
            if f.index == index and i not in self._consumed_handoffs:
                self._consumed_handoffs.add(i)
                return f.mode
        return None

    # -- reporting ------------------------------------------------------

    def affected_shards(self) -> set[str]:
        """Shards named by any scheduled fault (handoff faults name no
        shard statically — their victims surface in the event stream)."""
        out: set[str] = set()
        out.update(s.shard for s in self.slowdowns)
        out.update(s.shard for s in self.stalls)
        out.update(c.shard for c in self.crash_list)
        out.update(c.shard for c in self.corruptions)
        return out

    def faults(self) -> list:
        return [*self.slowdowns, *self.stalls, *self.crash_list,
                *self.corruptions, *self.handoff_faults]

    def describe(self) -> list[str]:
        return [f.describe() for f in self.faults()]

    def clock_for(self, shard: str) -> "ChaosClock":
        """The slowdown-scaling virtual clock the fleet installs on
        ``shard`` (keeps :mod:`repro.fleet` free of chaos imports)."""
        return ChaosClock(self, shard)


class ChaosClock(VirtualClock):
    """A :class:`~repro.serve.scheduler.VirtualClock` that scales every
    advance by the schedule's active slowdown factor for its shard.

    Work whose execution *starts* inside a slowdown window pays the
    full factor — the discrete-event analogue of a degraded host, and
    still a pure function of (schedule, history)."""

    def __init__(self, schedule: ChaosSchedule, shard: str):
        super().__init__()
        self.schedule = schedule
        self.shard = shard

    def advance(self, ticks: int) -> int:
        factor = self.schedule.slow_factor(self.shard, self.now)
        return super().advance(int(ticks) * factor)
