"""repro.chaos — seeded, deterministic fleet-level fault injection.

Chaos engineering for the virtual-clock serving fleet: a
:class:`~repro.chaos.schedule.ChaosSchedule` names exactly which shard
slows, stalls, crashes, serves a bit-flipped artifact or mangles a
handoff, and :mod:`repro.chaos.invariants` certifies — as bit-level
equalities, not statistics — that the defense layers (hedged requests,
circuit breakers, brownout, cache quarantine, checkpointed fail-over)
preserve exactly-once completion, unaffected-request identity and
deterministic health snapshots under every schedule.
"""

from .invariants import CHAOS_KINDS, check_schedule, run_sweep
from .schedule import (
    CacheCorruption,
    ChaosClock,
    ChaosSchedule,
    Crash,
    HandoffFault,
    Slowdown,
    Stall,
)

__all__ = [
    "Slowdown",
    "Stall",
    "Crash",
    "CacheCorruption",
    "HandoffFault",
    "ChaosSchedule",
    "ChaosClock",
    "CHAOS_KINDS",
    "check_schedule",
    "run_sweep",
]
