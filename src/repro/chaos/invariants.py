"""Chaos invariants: what must survive a faulted fleet run, exactly.

Because the fleet is a deterministic discrete-event simulation, chaos
testing here proves *equalities*, not statistics.  For every seeded
fault schedule the sweep runs three fleets over the same workload —
failure-free baseline, chaos, chaos again — all with the full defense
stack enabled (hedging, circuit breakers, brownout), and asserts:

1. **Exactly-once completion** — the multiset of response request
   digests equals the workload's, despite hedged copies, duplicated
   handoffs and crash replays.
2. **Unaffected-request identity** — every request whose causal
   timeline touches no *tainted* shard and carries no chaos-kind event
   has a :func:`repro.obs.reqtrace.timeline_doc` and response core
   document **bit-identical** to the failure-free run.  Tainted =
   shards named by the schedule plus any shard hosting a chaos-kind
   event at runtime (hedge destinations, fail-over replacements, …).
3. **Deterministic health** — the two chaos runs agree byte-for-byte
   on the flight-recorder digest, the stream digest and the rendered
   ``repro.obs/health.v1`` snapshot.
4. **Exact stage attribution** — for every completed request of every
   run, the per-stage tick decomposition sums exactly to its
   end-to-end virtual latency (hedged, shed, degraded and replayed
   requests included).

The invariant band runs with stealing disabled so shards stay causally
independent except through the defense layers themselves (the taint
analysis is then sound); a second *handoff band* runs with stealing on
and chaos-injected duplicated/dropped handoffs, asserting invariants
1, 3 and 4 (baseline identity is not claimed there — steal planning is
global, so a faulted run may legitimately migrate different items).

Hedge delays in the sweep are pinned to ``initial_delay`` (by an
unreachable ``min_samples``) so hedge timing is a local function of
each delivery, keeping fault-free shards bit-comparable; the adaptive
p95 path is exercised by the defense unit tests and the straggler
bench instead.
"""

from __future__ import annotations

import json

from ..fleet import FleetService, synthetic_workload
from ..fleet.defense import BreakerPolicy, HedgePolicy
from ..fleet.service import core_doc
from ..obs import EventLog
from ..obs.reqtrace import timeline_doc, timelines
from ..obs.slo import fleet_health
from ..serve.scheduler import BrownoutPolicy
from .schedule import ChaosSchedule

__all__ = ["CHAOS_KINDS", "check_schedule", "run_sweep"]

#: event kinds that only the defense/fault machinery emits — their
#: presence marks a request (and taints a shard) as fault-affected
CHAOS_KINDS = frozenset({
    "hedge", "hedge_win", "breaker_open", "breaker_half_open",
    "breaker_close", "shed", "degrade", "corrupt_detect", "quarantine",
    "failover", "failover_replay",
})

#: horizon (virtual ticks) fault windows are drawn inside — matched to
#: the ~8k-tick makespan of the 40-request sweep workload so windows
#: actually intersect live traffic (and back-half crashes fire)
HORIZON = 8_000


def _defense_config() -> dict:
    # min_samples is unreachable on purpose: the hedge delay stays
    # pinned at initial_delay, so hedge timing never depends on
    # fleet-global completion statistics (see module docstring)
    return dict(
        hedge=HedgePolicy(initial_delay=12_000, min_delay=4_000,
                          min_samples=10**9, transfer_latency=100),
        breaker=BreakerPolicy(),
        brownout=BrownoutPolicy(shed_depth=40, pressure_depth=20,
                                degrade_depth=28),
    )


def _build_fleet(n_shards: int, recorder, *, chaos=None,
                 stealing: bool = False) -> FleetService:
    return FleetService(
        n_shards, cache_bytes=32 << 20, l2_bytes=512 << 20,
        steal_threshold=4, steal_latency=100, stealing=stealing,
        recorder=recorder, chaos=chaos, **_defense_config(),
    )


def _schedule(seed: int, shard_ids: list[str], *,
              stealing: bool) -> ChaosSchedule:
    # draw every fault on at most two (seed-chosen) shards, so invariant
    # 2 always has provably-clean shards left to compare against
    n = len(shard_ids)
    targets = sorted({shard_ids[seed % n], shard_ids[(3 * seed + 1) % n]})
    return ChaosSchedule.random(
        seed, targets, HORIZON,
        n_slow=1, n_stall=1, n_crash=seed % 2, n_corrupt=1,
        n_handoff=2 if stealing else 0,
        # alternate mild and brutal stragglers so some schedules push
        # tainted-shard latency past the hedge delay
        slow_factor=10 if seed % 2 else 40,
    )


def _assert_stage_sums(log: EventLog, label: str) -> int:
    n = 0
    for tl in timelines(log):
        total = sum(tl.stages.values())
        assert total == tl.latency, (
            f"{label}: stage attribution of {tl.rid[:12]}… sums to "
            f"{total}, end-to-end latency is {tl.latency}"
        )
        n += 1
    return n


def _tainted_shards(schedule: ChaosSchedule, log: EventLog) -> set[str]:
    tainted = set(schedule.affected_shards())
    for ev in log.events:
        if ev.shard is None:
            continue
        if ev.kind in CHAOS_KINDS or "fault" in ev.attrs:
            tainted.add(ev.shard)
    return tainted


def _clean(doc: dict, tainted: set[str]) -> bool:
    """No hop on a tainted shard, no chaos-kind event, no faulted
    handoff — the request provably never met the fault."""
    for ev in doc["events"]:
        if ev["shard"] in tainted:
            return False
        if ev["kind"] in CHAOS_KINDS or "fault" in ev["attrs"]:
            return False
    return True


def check_schedule(seed: int, *, n_shards: int = 4, n_requests: int = 40,
                   stealing: bool = False) -> dict:
    """Run one seeded schedule through the three-run protocol and
    assert every applicable invariant; returns a summary dict.

    Raises ``AssertionError`` (with a specific message) on any breach.
    """
    workload = synthetic_workload(n_requests, seed=seed)
    expected = sorted(a.request.digest for a in workload)
    label = f"seed {seed}" + (" (handoff band)" if stealing else "")

    base_log = EventLog()
    base = _build_fleet(n_shards, base_log, stealing=stealing)
    base.run(synthetic_workload(n_requests, seed=seed))

    def chaos_run() -> tuple[FleetService, EventLog, ChaosSchedule]:
        log = EventLog()
        sched = _schedule(seed, list(base.shard_ids), stealing=stealing)
        fleet = _build_fleet(n_shards, log, chaos=sched, stealing=stealing)
        fleet.run(synthetic_workload(n_requests, seed=seed))
        return fleet, log, sched

    fleet_a, log_a, sched = chaos_run()
    fleet_b, log_b, _ = chaos_run()

    # 1. exactly-once: every admitted request completes exactly once
    got = sorted(r.request_digest for r in fleet_a.responses)
    assert got == expected, (
        f"{label}: exactly-once violated — {len(got)} responses for "
        f"{len(expected)} requests"
    )

    # 3. deterministic replay of the faulted run, health included
    assert log_a.digest == log_b.digest, (
        f"{label}: chaos run is not deterministic (event digests differ)"
    )
    assert fleet_a.stream_digest == fleet_b.stream_digest, (
        f"{label}: chaos run is not deterministic (stream digests differ)"
    )
    health_a = json.dumps(fleet_health(log_a), sort_keys=True)
    health_b = json.dumps(fleet_health(log_b), sort_keys=True)
    assert health_a == health_b, (
        f"{label}: health snapshot is not deterministic"
    )

    # 4. exact stage attribution in every run
    _assert_stage_sums(base_log, f"{label} baseline")
    n_timelines = _assert_stage_sums(log_a, f"{label} chaos")

    # 2. unaffected requests are bit-identical to the failure-free run
    checked = 0
    if not stealing:
        tainted = _tainted_shards(sched, log_a)
        base_docs = {tl.rid: timeline_doc(tl) for tl in timelines(base_log)}
        base_core = {r.request_digest: core_doc(r) for r in base.responses}
        chaos_core = {r.request_digest: core_doc(r)
                      for r in fleet_a.responses}
        for tl in timelines(log_a):
            doc = timeline_doc(tl)
            if not _clean(doc, tainted):
                continue
            assert doc == base_docs.get(tl.rid), (
                f"{label}: unaffected request {tl.rid[:12]}… has a "
                f"different timeline than the failure-free run"
            )
            assert chaos_core[tl.rid] == base_core[tl.rid], (
                f"{label}: unaffected request {tl.rid[:12]}… has a "
                f"different response core than the failure-free run"
            )
            checked += 1
        assert checked > 0, (
            f"{label}: taint analysis left no unaffected requests to "
            f"compare — schedule too aggressive for the invariant"
        )

    return {
        "seed": seed,
        "band": "handoff" if stealing else "isolation",
        "faults": sched.describe(),
        "responses": len(fleet_a.responses),
        "timelines": n_timelines,
        "unaffected_checked": checked,
        "hedges": fleet_a.hedges_fired,
        "hedge_wins": fleet_a.hedge_wins,
        "failovers": len(fleet_a.failover_events),
        "event_digest": log_a.digest,
        "stream_digest": fleet_a.stream_digest,
    }


def run_sweep(seeds=tuple(range(8)), handoff_seeds=(100, 101), *,
              n_shards: int = 4, n_requests: int = 40,
              strict: bool = True, log=print) -> dict:
    """Sweep the invariant checks over many seeded schedules.

    ``seeds`` drive the isolation band (stealing off, all four
    invariants); ``handoff_seeds`` drive the handoff band (stealing
    on, invariants 1/3/4).  With ``strict`` the first breach raises;
    otherwise breaches are collected into the returned summary.
    """
    results: list[dict] = []
    breaches: list[str] = []
    for stealing, band in ((False, seeds), (True, handoff_seeds)):
        for seed in band:
            try:
                res = check_schedule(int(seed), n_shards=n_shards,
                                     n_requests=n_requests,
                                     stealing=stealing)
            except AssertionError as exc:
                if strict:
                    raise
                breaches.append(str(exc))
                continue
            results.append(res)
            if log is not None:
                log(f"  seed {seed:>3} [{res['band']:>9}] PASS  "
                    f"faults={len(res['faults'])} "
                    f"hedges={res['hedges']} "
                    f"unaffected={res['unaffected_checked']}")
    return {
        "schedules": len(results) + len(breaches),
        "passed": len(results),
        "breaches": breaches,
        "results": results,
    }
