"""``python -m repro`` dispatches to the artifact-style CLI."""

import sys

from .cli import main

sys.exit(main())
