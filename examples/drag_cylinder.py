#!/usr/bin/env python3
"""Flow past a carved cylinder: VMS Navier–Stokes + drag extraction.

The paper validates its solver on the sphere drag crisis (Fig. 13/14);
the laptop-feasible analogue solved *for real* here is steady flow past
a 2-D cylinder at Re = 20/40 on a carved incomplete octree, with the
drag coefficient compared against standard references (the domain has
~10% blockage with fixed free-stream walls, which raises C_d by a
factor ≈1.2 over the unbounded values — reported alongside).  It also
prints wake statistics, the Fig.-14 quantities.

Run:  python examples/drag_cylinder.py
"""

import numpy as np

from repro import Domain, build_mesh
from repro.analysis import CYLINDER_CD_REFERENCE, drag_from_faces
from repro.core.faces import extract_boundary_faces
from repro.fem import NavierStokesProblem
from repro.geometry import SphereCarve

D = 1.0  # cylinder diameter
CENTER = (3.0, 5.0)
SCALE = 10.0
BLOCKAGE_FACTOR = 1.0 / (1.0 - D / SCALE) ** 2  # fixed-wall correction


def velocity_bc(mesh):
    pts = mesh.node_coords()
    n = len(pts)
    mask = np.zeros((n, 2), bool)
    vals = np.zeros((n, 2))
    inlet = np.isclose(pts[:, 0], 0.0)
    walls = np.isclose(pts[:, 1], 0.0) | np.isclose(pts[:, 1], SCALE)
    mask[inlet] = True
    vals[inlet, 0] = 1.0
    mask[walls] = True
    vals[walls, 0] = 1.0  # constant free-stream on the walls (paper §5)
    obj = mesh.nodes.carved_node
    mask[obj] = True
    vals[obj] = 0.0  # no-slip on the carved cylinder surface
    return mask, vals


def main() -> None:
    domain = Domain(SphereCarve(CENTER, D / 2), scale=SCALE)
    mesh = build_mesh(domain, base_level=5, boundary_level=8, p=1)
    print(mesh.summary())
    pts = mesh.node_coords()
    outlet = np.isclose(pts[:, 0], SCALE)
    mask, vals = velocity_bc(mesh)
    faces, _ = extract_boundary_faces(mesh)
    print(f"cylinder surrogate boundary: {len(faces)} faces")

    for Re in (20, 40):
        ns = NavierStokesProblem(
            mesh, nu=1.0 / Re, velocity_bc=lambda p: (mask, vals),
            pressure_pin=outlet,
        )
        res = ns.picard_solve(max_iter=40, tol=1e-7)
        F = drag_from_faces(mesh, faces, res.velocity, res.pressure, nu=1.0 / Re)
        cd = F / (0.5 * 1.0 * D)
        ref = CYLINDER_CD_REFERENCE[Re]
        print(f"Re={Re}: Cd={cd:.3f}  unbounded ref={ref}  "
              f"blockage-corrected ref≈{ref * BLOCKAGE_FACTOR:.2f}  "
              f"(picard iters={res.iterations})")

        # wake statistics (the Fig.-14 flavour): velocity deficit and
        # recirculation extent along the centreline behind the cylinder
        U = res.velocity
        line = np.isclose(pts[:, 1], CENTER[1]) & (pts[:, 0] > CENTER[0] + D / 2)
        xs, ux = pts[line, 0], U[line, 0]
        order = np.argsort(xs)
        xs, ux = xs[order], ux[order]
        rec = xs[ux < 0]
        wake_len = (rec.max() - (CENTER[0] + D / 2)) if len(rec) else 0.0
        print(f"       recirculation length ≈ {wake_len:.2f} D, "
              f"min centreline u_x = {ux.min():.3f}")


if __name__ == "__main__":
    main()
