#!/usr/bin/env python3
"""Quickstart: carve a sphere from a box, build an adaptive incomplete
octree, and solve a Poisson problem on it — the library's core loop.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Domain, build_mesh
from repro.core.matvec import MapBasedMatVec, traversal_matvec
from repro.fem import PoissonProblem
from repro.geometry import SphereCarve


def main() -> None:
    # A sphere of diameter 1 carved from a 10x10x10 box — the paper's
    # flow-past-a-sphere domain (§4.5.2), at laptop scale.
    domain = Domain(SphereCarve([5.0, 5.0, 5.0], 0.5), scale=10.0)
    mesh = build_mesh(domain, base_level=3, boundary_level=6, p=1)
    print(mesh.summary())
    print(f"dirichlet nodes (cube + carved boundary): {mesh.dirichlet_mask.sum()}")

    # The two matrix-free MATVECs agree to machine precision.
    rng = np.random.default_rng(0)
    u = rng.standard_normal(mesh.n_nodes)
    y_map = MapBasedMatVec(mesh)(u)
    y_trav = traversal_matvec(mesh, u)
    print(f"map-based vs traversal MATVEC max diff: {np.abs(y_map - y_trav).max():.2e}")

    # Solve −Δu = 1 with u = 0 on all boundaries.
    problem = PoissonProblem(mesh, f=1.0, dirichlet=0.0, method="nodal")
    sol = problem.solve(rtol=1e-8, solver="cg")
    interior = ~mesh.dirichlet_mask
    print(f"Poisson solved: max u = {sol[interior].max():.4f}, "
          f"mean u = {sol[interior].mean():.4f}")


if __name__ == "__main__":
    main()
