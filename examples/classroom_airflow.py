#!/usr/bin/env python3
"""Classroom airflow and viral-load transport (the paper's §5
application, Figs. 15-16): carve desks, monitors and mannequins out of
a room, solve the ventilation flow, then advect the viral load released
by an infected occupant — with and without monitors.

The paper's observation: monitors redirect the flow upwards, away from
the occupied zone, significantly reducing transmission risk at the
other seats.  We reproduce the comparison at laptop scale and report
per-breathing-zone exposure.

Run:  python examples/classroom_airflow.py  [--fast]
"""

import sys

import numpy as np

from repro import build_mesh
from repro.fem import NavierStokesProblem, TransportProblem
from repro.geometry import ClassroomScene


def breathing_zone_exposure(mesh, scene, c):
    """Mean (non-negative) concentration in each breathing zone."""
    pts = mesh.node_coords()
    out = []
    for zone in scene.breathing_zones():
        c0, r = zone[:3], zone[3]
        sel = np.linalg.norm(pts - c0, axis=1) <= r
        out.append(float(np.clip(c[sel], 0, None).mean()) if sel.any() else 0.0)
    return np.array(out)


def run_scenario(with_monitors: bool, fast: bool):
    scene = ClassroomScene(n_rows=2, n_cols=3, with_monitors=with_monitors,
                           infected=0)
    dom = scene.domain()
    base, bnd = (4, 5) if fast else (4, 6)
    mesh = build_mesh(dom, base, bnd, p=1)
    mask, vals, outlet = scene.velocity_bc(mesh)
    ns = NavierStokesProblem(
        mesh, nu=0.02, velocity_bc=lambda p: (mask, vals), pressure_pin=outlet
    )
    flow = ns.picard_solve(max_iter=5 if fast else 8, tol=1e-4)
    print(f"  mesh: {mesh.n_elem} elements, {mesh.n_nodes} nodes; "
          f"flow solved ({flow.iterations} picard iters, dU={flow.residual:.1e})")

    # statistically-steady flow advects the cough-released viral load
    pts = mesh.node_coords()
    inlet_nodes = mask[:, 2] & (vals[:, 2] < 0)
    tp = TransportProblem(
        mesh, flow.velocity, kappa=1e-2, dt=0.1,
        dirichlet_mask=inlet_nodes, dirichlet_value=0.0,
    )
    c = np.zeros(mesh.n_nodes)
    src = scene.cough_source(rate=1.0)
    nsteps = 40 if fast else 150
    dose = np.zeros(len(scene.seats))
    for step in range(nsteps):
        # periodic coughing: source active every 4th step
        c = tp.step(c, source=src if step % 4 == 0 else 0.0)
        dose += tp.dt * breathing_zone_exposure(mesh, scene, c)
    return mesh, c, dose


def main() -> None:
    fast = "--fast" in sys.argv
    results = {}
    for monitors in (False, True):
        label = "with monitors" if monitors else "no monitors"
        print(f"scenario: {label}")
        mesh, c, dose = run_scenario(monitors, fast)
        results[monitors] = dose
        rel = dose / max(dose[0], 1e-30)
        print(f"  time-integrated dose per seat:   {np.array2string(dose, precision=5)}")
        print(f"  relative to the infected's seat: {np.round(rel, 4)}")

    # exposure at the *other* (non-infected) seats
    other = slice(1, None)
    e_no = results[False][other].mean()
    e_mon = results[True][other].mean()
    print("\nsummary (mean time-integrated dose at non-infected seats):")
    print(f"  no monitors:   {e_no:.6f}")
    print(f"  with monitors: {e_mon:.6f}")
    print(f"  reduction:     {100 * (1 - e_mon / e_no):.0f}% "
          f"(paper: 'significant reduction ... with monitors')")


if __name__ == "__main__":
    main()
