#!/usr/bin/env python3
"""Distributed incomplete-octree pipeline on the simulated MPI: the
elongated-channel workload of the paper's scaling study (§4.5.1),
end to end — distributed construction, partitioning, ghost analysis,
a verified distributed MATVEC, and the modelled strong-scaling curve.

Run:  python examples/channel_scaling.py
"""

import numpy as np

from repro import Domain, build_mesh
from repro.core.matvec import MapBasedMatVec
from repro.geometry import BoxRetain
from repro.parallel import (
    FRONTERA,
    SimComm,
    analyze_partition,
    distributed_matvec,
    model_matvec,
    partition_mesh,
    rank_statistics,
)


def main() -> None:
    # a 16x1x1 channel retained inside a 16^3 cube, refined at the walls
    domain = Domain(
        BoxRetain([0, 0, 0], [16, 1, 1], domain=([0, 0, 0], [16, 16, 16])),
        scale=16.0,
    )
    mesh = build_mesh(domain, base_level=6, boundary_level=8, p=1)
    print(mesh.summary())

    rng = np.random.default_rng(0)
    u = rng.standard_normal(mesh.n_nodes)
    serial = MapBasedMatVec(mesh)(u)

    print(f"\n{'ranks':>6} {'ghost/rank':>11} {'eta':>7} {'msgs':>5} "
          f"{'t_model':>10} {'efficiency':>10}")
    t1 = None
    for nranks in (1, 2, 4, 8, 16, 32, 64):
        splits = partition_mesh(mesh, nranks, load_tol=0.1)
        layout = analyze_partition(mesh, splits)
        comm = SimComm(nranks)
        dist = distributed_matvec(mesh, layout, u, comm)
        assert np.allclose(dist, serial, atol=1e-10), "distributed != serial"
        stats = rank_statistics(mesh, layout)
        phases = model_matvec(stats, p=mesh.p, dim=mesh.dim, machine=FRONTERA)
        t = phases.time
        t1 = t1 or t
        eff = t1 / (t * nranks)
        print(f"{nranks:>6} {stats.ghost_nodes.mean():>11.1f} "
              f"{layout.eta().mean():>7.3f} {stats.messages.max():>5} "
              f"{t * 1e3:>8.2f}ms {eff:>10.2f}")
    print("\n(distributed MATVEC verified bit-identical to serial at "
          "every rank count; times from the calibrated machine model)")


if __name__ == "__main__":
    main()
