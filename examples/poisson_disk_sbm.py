#!/usr/bin/env python3
"""Poisson on a carved disk: naive voxel BCs vs the Shifted Boundary
Method (the paper's §4.3 / Fig. 6 study).

The disk of radius 0.5 is *retained* (everything outside carved); the
voxelated boundary makes naive nodal Dirichlet data first-order
accurate, while SBM recovers second order.

Run:  python examples/poisson_disk_sbm.py
"""

import numpy as np

from repro import Domain, build_uniform_mesh
from repro.analysis import observed_rates
from repro.fem import PoissonProblem, l2_error, linf_error
from repro.geometry import SphereRetain

R = 0.5
CENTER = np.array([0.5, 0.5])


def exact(pts):
    r2 = ((pts - CENTER) ** 2).sum(axis=1)
    return 0.25 * (R * R - r2)


def main() -> None:
    domain = Domain(SphereRetain(CENTER, R))
    levels = [4, 5, 6, 7]
    for method in ("nodal", "sbm"):
        hs, e2s, einfs = [], [], []
        print(f"\n--- method = {method}")
        for lv in levels:
            mesh = build_uniform_mesh(domain, lv, p=1)
            u = PoissonProblem(mesh, f=1.0, dirichlet=0.0, method=method).solve()
            h = 2.0**-lv
            e2, einf = l2_error(mesh, u, exact), linf_error(mesh, u, exact)
            hs.append(h); e2s.append(e2); einfs.append(einf)
            print(f"  level {lv}: h={h:.4f}  L2={e2:.3e}  Linf={einf:.3e}")
        r2 = observed_rates(np.array(hs), np.array(e2s))
        ri = observed_rates(np.array(hs), np.array(einfs))
        print(f"  observed rates: L2 {np.round(r2, 2)}, Linf {np.round(ri, 2)}")
        print(f"  (paper: naive = first order, SBM = second order)")


if __name__ == "__main__":
    main()
