#!/usr/bin/env python3
"""Moving-object re-meshing: the workflow the paper's fast carving
enables ("fast, well-balanced creation of complex meshes ... open the
way for parametric exploration").

A disk sweeps across the domain; at every step the incomplete octree is
rebuilt around the new position (a few milliseconds at this scale), the
scalar field is transferred from the previous mesh, and a diffusion
step is taken on the new mesh.  Mesh counts stay roughly constant while
the refined region follows the object.

Run:  python examples/moving_object.py
"""

import time

import numpy as np

from repro import Domain, build_mesh
from repro.core.interpolate import transfer_field
from repro.fem import TransportProblem
from repro.geometry import SphereCarve


def main() -> None:
    nsteps = 8
    radius = 0.18
    c = np.zeros(0)
    mesh_prev = None
    total_rebuild = 0.0
    print(f"{'step':>5} {'centre':>12} {'elements':>9} {'nodes':>7} "
          f"{'rebuild(ms)':>12} {'mass':>9}")
    for k in range(nsteps):
        x = 0.25 + 0.5 * k / (nsteps - 1)
        dom = Domain(SphereCarve([x, 0.5], radius))
        t0 = time.perf_counter()
        mesh = build_mesh(dom, 3, 6, p=1)
        dt_build = time.perf_counter() - t0
        total_rebuild += dt_build
        if mesh_prev is None:
            pts = mesh.node_coords()
            c = np.exp(-60 * ((pts - [0.2, 0.8]) ** 2).sum(axis=1))
        else:
            c = transfer_field(mesh_prev, mesh, c)
        # one diffusion step on the new mesh
        tp = TransportProblem(mesh, np.zeros((mesh.n_nodes, 2)),
                              kappa=2e-3, dt=0.05)
        c = tp.step(c)
        mass = tp.total_mass(c)
        print(f"{k:>5} {x:>12.3f} {mesh.n_elem:>9} {mesh.n_nodes:>7} "
              f"{dt_build * 1e3:>12.1f} {mass:>9.5f}")
        mesh_prev = mesh
    print(f"\ntotal re-meshing time over {nsteps} steps: "
          f"{total_rebuild * 1e3:.0f} ms — carving makes per-step mesh "
          f"regeneration affordable")


if __name__ == "__main__":
    main()
