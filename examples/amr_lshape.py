#!/usr/bin/env python3
"""Adaptive mesh refinement on the L-shaped domain.

The classic AFEM benchmark: the harmonic function u = r^{2/3} sin(2θ/3)
around a re-entrant corner has unbounded gradients at the corner, so a
uniform mesh converges at the crippled rate ||e|| ~ N^{-2/3} while the
estimator-driven adaptive loop recovers the optimal N^{-1} (in L2, p=1)
by grading the mesh into the singularity.

The carved box is grid-conforming (the voxelated boundary IS the true
boundary), so the comparison isolates the refinement strategy.  Every
incremental plan update is cross-checked bit-identical against a full
rebuild (the equivalence gate of repro.core.plan_delta).

Run:  python examples/amr_lshape.py
"""

import numpy as np

from repro.amr import amr_solve
from repro.core import Domain, construct_adaptive
from repro.core.mesh import mesh_from_leaves
from repro.fem.poisson import PoissonProblem, l2_error
from repro.geometry import BoxCarve


def exact(pts: np.ndarray) -> np.ndarray:
    """r^{2/3} sin(2θ/3) about the re-entrant corner at (0.5, 0.5)."""
    x = pts[:, 0] - 0.5
    y = pts[:, 1] - 0.5
    r = np.hypot(x, y)
    theta = np.mod(np.arctan2(y, x) - np.pi / 2, 2 * np.pi)
    return np.where(r > 0, r ** (2.0 / 3.0), 0.0) * np.sin(2.0 * theta / 3.0)


def main() -> None:
    # [0,1]^2 minus the upper-right quadrant: re-entrant corner at the
    # center, interior angle 3π/2
    domain = Domain(BoxCarve([0.5, 0.5], [1.0, 1.0]), dim=2, scale=1.0)

    print("uniform refinement:")
    uni = []
    for level in (3, 4, 5, 6):
        mesh = mesh_from_leaves(
            domain, construct_adaptive(domain, level, level), p=1
        )
        u = PoissonProblem(mesh, f=0.0, dirichlet=exact).solve()
        err = l2_error(mesh, u, exact)
        uni.append((mesh.n_nodes, err))
        print(f"  level {level}: {mesh.n_nodes:>6} DOFs  L2 error {err:.3e}")

    print("adaptive refinement (Dörfler θ=0.5):")
    res = amr_solve(
        domain, f=0.0, dirichlet=exact, base_level=3, max_cycles=12,
        theta=0.5, exact=exact,
    )
    for rec in res.history:
        print(f"  cycle {rec['cycle']:>2}: {rec['n_dofs']:>6} DOFs  "
              f"L2 error {rec['error_l2']:.3e}  churn {rec['churn']:.2f}")

    # convergence rates from the last few points of each curve
    def rate(points):
        (n0, e0), (n1, e1) = points[-3], points[-1]
        return np.log(e0 / e1) / np.log(n1 / n0)

    amr_pts = [(r["n_dofs"], r["error_l2"]) for r in res.history]
    print(f"uniform rate:  N^-{rate(uni):.2f}")
    print(f"adaptive rate: N^-{rate(amr_pts):.2f}  "
          f"(optimal for p=1 in 2-D: N^-1)")
    print(f"trajectory digest: {res.digest()}")


if __name__ == "__main__":
    main()
