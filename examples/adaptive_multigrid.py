#!/usr/bin/env python3
"""Adaptivity + multigrid + VTK export: the extension features together.

Builds a point-cloud-adapted carved mesh (refinement criterion #3 of
the paper's §3.2), solves Poisson with a geometric-multigrid
preconditioner, coarsens where the solution is smooth, and exports
both meshes with fields to ParaView-readable .vtu files.

Run:  python examples/adaptive_multigrid.py
"""

import numpy as np
import scipy.sparse as sp

from repro import Domain, assemble, build_mesh, mesh_from_leaves
from repro.core.adapt import coarsen_leaves, construct_from_points
from repro.fem import PoissonProblem
from repro.geometry import SphereCarve
from repro.io import write_vtu
from repro.solvers import MultigridPoisson, cg, jacobi


def main() -> None:
    domain = Domain(SphereCarve([0.5, 0.5], 0.25))

    # a synthetic sensor cloud clustered near the object drives refinement
    rng = np.random.default_rng(42)
    angles = rng.uniform(0, 2 * np.pi, 4000)
    radii = 0.25 + np.abs(rng.normal(0, 0.08, 4000))
    cloud = 0.5 + np.stack([radii * np.cos(angles), radii * np.sin(angles)], 1)
    cloud = np.clip(cloud, 0.01, 0.99)
    leaves = construct_from_points(domain, cloud, max_points=30)
    mesh = mesh_from_leaves(domain, leaves, p=1)
    print(f"point-cloud-adapted mesh: {mesh.summary()}")

    # multigrid-preconditioned CG solve
    hierarchy = [mesh] + [build_mesh(domain, lv, lv + 2, p=1) for lv in (4, 3)]
    A = assemble(mesh)
    fixed = mesh.dirichlet_mask
    keep = sp.diags((~fixed).astype(float))
    Abc = (keep @ A @ keep + sp.diags(fixed.astype(float))).tocsr()
    b = keep @ np.ones(mesh.n_nodes)
    mg = MultigridPoisson(hierarchy, Abc, fixed)
    r_mg = cg(Abc, b, M=mg, rtol=1e-10)
    r_j = cg(Abc, b, M=jacobi(Abc), rtol=1e-10, maxiter=20000)
    print(f"CG iterations: multigrid {r_mg.iterations} vs jacobi {r_j.iterations}")
    u = r_mg.x

    # coarsen elements where the solution is locally flat
    u_loc = (mesh.nodes.gather @ u).reshape(mesh.n_elem, mesh.npe)
    variation = u_loc.max(axis=1) - u_loc.min(axis=1)
    marks = variation < 0.25 * max(u.max(), 1e-12)
    coarse_leaves = coarsen_leaves(domain, mesh.leaves, marks, min_level=2)
    coarse_mesh = mesh_from_leaves(domain, coarse_leaves, p=1)
    print(f"coarsened mesh: {coarse_mesh.n_elem} elements "
          f"(from {mesh.n_elem})")
    u_c = PoissonProblem(coarse_mesh, f=1.0).solve()

    p1 = write_vtu(mesh, "/tmp/adaptive_fine.vtu", point_data={"u": u},
                   cell_data={"level": mesh.leaves.levels.astype(float)})
    p2 = write_vtu(coarse_mesh, "/tmp/adaptive_coarse.vtu",
                   point_data={"u": u_c})
    print(f"wrote {p1} and {p2} (open in ParaView)")


if __name__ == "__main__":
    main()
