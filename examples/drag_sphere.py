#!/usr/bin/env python3
"""3-D flow past a carved sphere: the paper's Fig. 13/14 geometry at
laptop-affordable Reynolds number.

A sphere of diameter 1 carved from a box (the §5 validation setup,
scaled down), solved with the VMS Navier–Stokes solver at Re = 100.
The voxelated no-slip boundary converges at first order, so the drag
coefficient is Richardson-extrapolated from two refinement levels and
compared against the Schiller–Naumann correlation; wake statistics give
the Fig.-14 qualitative picture.

Run:  python examples/drag_sphere.py      (~2-3 minutes)
"""

import time

import numpy as np

from repro import Domain, build_mesh
from repro.analysis import drag_from_faces, schiller_naumann_cd
from repro.core.faces import extract_boundary_faces
from repro.fem import NavierStokesProblem
from repro.geometry import SphereCarve

D = 1.0
CENTER = np.array([3.0, 5.0, 5.0])
SCALE = 10.0
RE = 100


def solve_level(base, boundary):
    dom = Domain(SphereCarve(CENTER, D / 2), scale=SCALE)
    mesh = build_mesh(dom, base, boundary, p=1)
    pts = mesh.node_coords()

    def bc(p_):
        n = len(p_)
        mask = np.zeros((n, 3), bool)
        vals = np.zeros((n, 3))
        inlet = np.isclose(p_[:, 0], 0.0)
        walls = (
            np.isclose(p_[:, 1], 0) | np.isclose(p_[:, 1], SCALE)
            | np.isclose(p_[:, 2], 0) | np.isclose(p_[:, 2], SCALE)
        )
        mask[inlet] = True
        vals[inlet, 0] = 1.0
        mask[walls] = True
        vals[walls, 0] = 1.0  # constant free-stream on the walls (paper §5)
        obj = mesh.nodes.carved_node
        mask[obj] = True
        vals[obj] = 0.0
        return mask, vals

    outlet = np.isclose(pts[:, 0], SCALE)
    ns = NavierStokesProblem(mesh, nu=1.0 / RE, velocity_bc=bc,
                             pressure_pin=outlet)
    res = ns.picard_solve(max_iter=15, tol=1e-5)
    faces, _ = extract_boundary_faces(mesh)
    F = drag_from_faces(mesh, faces, res.velocity, res.pressure, nu=1.0 / RE)
    cd = F / (0.5 * np.pi * (D / 2) ** 2)
    return mesh, res, cd


def main() -> None:
    ref = float(schiller_naumann_cd(RE))
    cds = []
    for base, boundary in ((3, 6), (4, 7)):
        t0 = time.time()
        mesh, res, cd = solve_level(base, boundary)
        cds.append(cd)
        print(f"levels ({base},{boundary}): {mesh.n_elem} elements, "
              f"Cd = {cd:.3f} ({res.iterations} picard iters, "
              f"{time.time() - t0:.0f}s)")
    # first-order (voxel boundary) Richardson extrapolation
    r = 0.5
    cd_star = cds[1] + (cds[1] - cds[0]) * r / (1 - r)
    print(f"\nRichardson-extrapolated Cd = {cd_star:.3f}")
    print(f"Schiller-Naumann reference  = {ref:.3f}  "
          f"(deviation {100 * abs(cd_star - ref) / ref:.1f}%)")

    # Fig-14 flavour: wake structure behind the sphere
    mesh, res, _ = solve_level(3, 6)
    pts = mesh.node_coords()
    U, P = res.velocity, res.pressure
    line = (
        (np.abs(pts[:, 1] - CENTER[1]) < 0.4)
        & (np.abs(pts[:, 2] - CENTER[2]) < 0.4)
        & (pts[:, 0] > CENTER[0] + D / 2)
    )
    xs, ux = pts[line, 0], U[line, 0]
    order = np.argsort(xs)
    print("\nwake centreline u_x:",
          np.array2string(ux[order][:10], precision=2))
    front = (
        (np.abs(pts[:, 1] - CENTER[1]) < 0.3)
        & (np.abs(pts[:, 2] - CENTER[2]) < 0.3)
        & (pts[:, 0] > 2.0) & (pts[:, 0] < 2.5)
    )
    behind = line & (pts[:, 0] < CENTER[0] + 1.5)
    print(f"stagnation pressure {P[front].mean():.3f} vs wake "
          f"{P[behind].mean():.3f} (high-pressure front, low-pressure wake)")


if __name__ == "__main__":
    main()
